//! Tenant registration and admission control.
//!
//! A *tenant* is one ingested (or generated) access trace plus the resident
//! memory budget it asks for. The [`TenantRegistry`] decides which tenants
//! the service runs, and when: under [`AdmissionPolicy::Reject`] a tenant
//! whose budget does not fit the remaining capacity is turned away; under
//! [`AdmissionPolicy::Queue`] it waits for a later *wave* — a batch of
//! co-scheduled tenants whose budgets together fit the service's capacity.
//!
//! Admission is deterministic: tenants are considered in submission order
//! (first-fit), so the same tenant set always produces the same waves.

use leap_workloads::AccessTrace;

/// Identifies a registered tenant (its 0-based submission index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// One tenant: a named workload trace and the resident-page budget its
/// admission requests.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable name (defaults to the trace's name).
    pub name: String,
    /// The access trace the tenant replays.
    pub trace: AccessTrace,
    /// Resident memory budget in pages, enforced by the engine's cgroup
    /// ledger during the run.
    pub budget_pages: u64,
}

impl TenantSpec {
    /// A tenant named after its trace.
    pub fn new(trace: AccessTrace, budget_pages: u64) -> Self {
        TenantSpec {
            name: trace.name().to_string(),
            trace,
            budget_pages,
        }
    }
}

/// What to do with a tenant whose budget does not fit the capacity left by
/// earlier admissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Turn the tenant away; it never runs.
    Reject,
    /// Queue the tenant for a later wave (batch of co-scheduled tenants).
    Queue,
}

/// The deterministic admission plan for a tenant set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionReport {
    /// Tenants that run, grouped into co-scheduled waves in execution
    /// order. Under [`AdmissionPolicy::Reject`] there is at most one wave.
    pub waves: Vec<Vec<TenantId>>,
    /// Tenants turned away: their budget exceeds the service capacity
    /// outright, or the policy is [`AdmissionPolicy::Reject`] and the
    /// capacity left by earlier admissions was insufficient.
    pub rejected: Vec<TenantId>,
}

impl AdmissionReport {
    /// Every admitted tenant, in execution order.
    pub fn admitted(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.waves.iter().flatten().copied()
    }

    /// Number of admitted tenants across all waves.
    pub fn admitted_count(&self) -> usize {
        self.waves.iter().map(|w| w.len()).sum()
    }
}

/// Registered tenants plus the admission policy and service capacity that
/// decide which of them run together.
#[derive(Debug, Clone)]
pub struct TenantRegistry {
    capacity_pages: u64,
    policy: AdmissionPolicy,
    specs: Vec<TenantSpec>,
}

impl TenantRegistry {
    /// An empty registry for a service with `capacity_pages` of local
    /// memory to hand out.
    pub fn new(capacity_pages: u64, policy: AdmissionPolicy) -> Self {
        TenantRegistry {
            capacity_pages,
            policy,
            specs: Vec::new(),
        }
    }

    /// Registers a tenant; its [`TenantId`] is its submission index.
    pub fn register(&mut self, spec: TenantSpec) -> TenantId {
        let id = TenantId(self.specs.len() as u32);
        self.specs.push(spec);
        id
    }

    /// The registered spec for `id`.
    pub fn spec(&self, id: TenantId) -> &TenantSpec {
        &self.specs[id.0 as usize]
    }

    /// Registered tenants, in submission order.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when no tenant has been registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The service capacity admission budgets are drawn from.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Plans admission: first-fit in submission order against the service
    /// capacity. Tenants asking for more than the whole capacity are always
    /// rejected; otherwise, under [`AdmissionPolicy::Queue`], tenants that
    /// do not fit the current wave are deferred to later waves until all
    /// are placed.
    pub fn admit(&self) -> AdmissionReport {
        let mut rejected = Vec::new();
        let mut pending: Vec<TenantId> = Vec::new();
        for (i, spec) in self.specs.iter().enumerate() {
            let id = TenantId(i as u32);
            if spec.budget_pages > self.capacity_pages {
                rejected.push(id);
            } else {
                pending.push(id);
            }
        }
        let mut waves = Vec::new();
        while !pending.is_empty() {
            let mut wave = Vec::new();
            let mut deferred = Vec::new();
            let mut free = self.capacity_pages;
            for id in pending {
                let budget = self.specs[id.0 as usize].budget_pages;
                if budget <= free {
                    free -= budget;
                    wave.push(id);
                } else {
                    deferred.push(id);
                }
            }
            debug_assert!(!wave.is_empty(), "a fitting tenant always places");
            waves.push(wave);
            match self.policy {
                AdmissionPolicy::Queue => pending = deferred,
                AdmissionPolicy::Reject => {
                    rejected.extend(deferred);
                    pending = Vec::new();
                }
            }
        }
        AdmissionReport { waves, rejected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_sim_core::units::MIB;
    use leap_workloads::sequential_trace;

    fn spec(budget: u64) -> TenantSpec {
        TenantSpec::new(sequential_trace(MIB, 1), budget)
    }

    #[test]
    fn reject_policy_drops_overflow_tenants() {
        let mut reg = TenantRegistry::new(100, AdmissionPolicy::Reject);
        for budget in [60, 50, 30, 200] {
            reg.register(spec(budget));
        }
        let report = reg.admit();
        assert_eq!(report.waves, vec![vec![TenantId(0), TenantId(2)]]);
        assert_eq!(report.rejected, vec![TenantId(3), TenantId(1)]);
    }

    #[test]
    fn queue_policy_defers_to_later_waves() {
        let mut reg = TenantRegistry::new(100, AdmissionPolicy::Queue);
        for budget in [60, 50, 30, 80] {
            reg.register(spec(budget));
        }
        let report = reg.admit();
        assert_eq!(
            report.waves,
            vec![
                vec![TenantId(0), TenantId(2)],
                vec![TenantId(1)],
                vec![TenantId(3)],
            ]
        );
        assert!(report.rejected.is_empty());
        assert_eq!(report.admitted_count(), 4);
    }

    #[test]
    fn oversized_tenant_is_always_rejected() {
        let mut reg = TenantRegistry::new(10, AdmissionPolicy::Queue);
        reg.register(spec(11));
        reg.register(spec(10));
        let report = reg.admit();
        assert_eq!(report.waves, vec![vec![TenantId(1)]]);
        assert_eq!(report.rejected, vec![TenantId(0)]);
    }

    #[test]
    fn admission_is_deterministic() {
        let mut reg = TenantRegistry::new(64, AdmissionPolicy::Queue);
        for budget in [40, 40, 24, 8, 64] {
            reg.register(spec(budget));
        }
        assert_eq!(reg.admit(), reg.admit());
    }
}
