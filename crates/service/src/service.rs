//! The far-memory paging service: admission → waves of multi-tenant
//! replays → per-tenant QoS reports.

use crate::qos::{TenantQos, TenantQosReport};
use crate::tenant::{AdmissionPolicy, AdmissionReport, TenantId, TenantRegistry, TenantSpec};
use leap::{RunResult, SimConfig, Simulator, TraceRecorder, VmmSimulator};
use leap_mem::Pid;
use leap_sim_core::Nanos;
use leap_workloads::{AccessTrace, IngestedLog};

/// One executed wave: the co-scheduled tenants' QoS numbers plus the wave's
/// aggregate replay result.
#[derive(Debug, Clone)]
pub struct WaveReport {
    /// Per-tenant QoS, paired with the tenant each pid mapped to, in pid
    /// order (pid `j + 1` is the wave's `j`-th admitted tenant).
    pub tenants: Vec<(TenantId, TenantQosReport)>,
    /// The wave's makespan (latest core's local completion time).
    pub makespan: Nanos,
    /// Aggregate paging throughput: all tenants' accesses per second of
    /// makespan.
    pub aggregate_pages_per_sec: f64,
    /// The wave's merged engine result (pipeline counters, per-tenant
    /// eviction counts, latency distributions).
    pub result: RunResult,
}

/// Everything one service run produces.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The admission plan the run executed.
    pub admission: AdmissionReport,
    /// One report per executed wave, in execution order.
    pub waves: Vec<WaveReport>,
}

impl ServiceReport {
    /// Every admitted tenant's QoS report, in execution order.
    pub fn tenant_reports(&self) -> impl Iterator<Item = &(TenantId, TenantQosReport)> + '_ {
        self.waves.iter().flat_map(|w| w.tenants.iter())
    }
}

/// A multi-tenant far-memory paging service over the Leap engine.
///
/// Tenants register traces (typically ingested fault logs) with a resident
/// memory budget; [`FarMemoryService::run`] plans admission, replays each
/// wave of co-scheduled tenants through a [`VmmSimulator`] whose engine
/// enforces the per-tenant budgets, and reports per-tenant QoS. The whole
/// run is deterministic for a fixed `(SimConfig, tenant set)` — including
/// across [`leap::ReplayMode`]s.
///
/// Fault injection rides the same config: a [`leap::FaultSpec`] set via
/// `SimConfigBuilder::fault_plan` schedules latency spikes, degraded
/// bandwidth, reconnect storms and machine failures inside every wave's
/// replay. Each wave's [`WaveReport::result`] then carries the fault
/// accounting (`result.fault_stats`), and tenants whose replay finishes
/// before the first fault epoch keep the QoS checksums they report on a
/// healthy fabric — churn degrades only the tenants it actually touches.
#[derive(Debug, Clone)]
pub struct FarMemoryService {
    sim: SimConfig,
    registry: TenantRegistry,
}

impl FarMemoryService {
    /// A service replaying tenants under `sim` with `capacity_pages` of
    /// local memory to hand out at admission.
    pub fn new(sim: SimConfig, capacity_pages: u64, policy: AdmissionPolicy) -> Self {
        FarMemoryService {
            sim,
            registry: TenantRegistry::new(capacity_pages, policy),
        }
    }

    /// Registers one tenant.
    pub fn register(&mut self, spec: TenantSpec) -> TenantId {
        self.registry.register(spec)
    }

    /// Admits every per-process trace of an ingested fault log as its own
    /// tenant; `budget_pages` assigns each trace's budget.
    pub fn register_ingested<F>(&mut self, log: IngestedLog, mut budget_pages: F) -> Vec<TenantId>
    where
        F: FnMut(&AccessTrace) -> u64,
    {
        log.into_traces()
            .into_iter()
            .map(|trace| {
                let budget = budget_pages(&trace);
                self.registry.register(TenantSpec::new(trace, budget))
            })
            .collect()
    }

    /// The registry backing this service.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Plans admission and replays every wave, producing per-tenant QoS.
    pub fn run(&self) -> ServiceReport {
        let admission = self.registry.admit();
        let waves = admission
            .waves
            .iter()
            .map(|wave| self.run_wave(wave, false).0)
            .collect();
        ServiceReport { admission, waves }
    }

    /// Like [`FarMemoryService::run`], but additionally records every wave's
    /// fault stream through a [`TraceRecorder`] and returns each wave's
    /// canonical fault log alongside the report. Re-ingesting a wave's log
    /// (`leap_workloads::ingest`) reproduces that wave's tenant traces
    /// bit-identically, so a recorded service run can be re-admitted as
    /// tenants of a fresh service — the round trip the ingest tests pin.
    pub fn run_recorded(&self) -> (ServiceReport, Vec<String>) {
        let admission = self.registry.admit();
        let mut logs = Vec::with_capacity(admission.waves.len());
        let waves = admission
            .waves
            .iter()
            .map(|wave| {
                let (report, log) = self.run_wave(wave, true);
                logs.push(log.expect("recording was requested"));
                report
            })
            .collect();
        (ServiceReport { admission, waves }, logs)
    }

    /// Replays one wave: tenant `wave[j]` runs as pid `j + 1` with its
    /// admitted budget enforced by the engine's tenant ledger. With `record`
    /// set, the wave's fault stream is also exported as a canonical log.
    fn run_wave(&self, wave: &[TenantId], record: bool) -> (WaveReport, Option<String>) {
        let traces: Vec<AccessTrace> = wave
            .iter()
            .map(|id| self.registry.spec(*id).trace.clone())
            .collect();
        let mut sim = VmmSimulator::new(self.sim);
        for (j, id) in wave.iter().enumerate() {
            sim.set_tenant_budget_pages(Pid(j as u32 + 1), self.registry.spec(*id).budget_pages);
        }
        let mut qos = TenantQos::new();
        let mut recorder = TraceRecorder::for_traces(&traces);
        let result = if record {
            sim.session()
                .observe(&mut qos)
                .observe(&mut recorder)
                .run_multi(&traces)
        } else {
            sim.session().observe(&mut qos).run_multi(&traces)
        };
        let makespan = qos.makespan();
        let tenants = qos
            .into_reports()
            .into_iter()
            .map(|report| {
                let id = wave[report.pid as usize - 1];
                (id, report)
            })
            .collect();
        let report = WaveReport {
            tenants,
            makespan,
            aggregate_pages_per_sec: result.throughput_ops_per_sec(),
            result,
        };
        (report, record.then(|| recorder.to_log()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_sim_core::units::MIB;
    use leap_workloads::sequential_trace;

    fn service(policy: AdmissionPolicy, capacity: u64) -> FarMemoryService {
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .seed(11)
            .build()
            .unwrap();
        FarMemoryService::new(config, capacity, policy)
    }

    #[test]
    fn budgets_are_enforced_per_tenant() {
        let mut svc = service(AdmissionPolicy::Reject, 10_000);
        // 256-page working set, 64-page budget: the tenant must page.
        svc.register(TenantSpec::new(sequential_trace(MIB, 3), 64));
        let report = svc.run();
        assert_eq!(report.admission.admitted_count(), 1);
        let wave = &report.waves[0];
        assert!(wave.result.remote_accesses > 0, "tight budget must page");
        let evicted: u64 = wave.result.tenant_evictions.values().sum();
        assert_eq!(wave.result.pages_swapped_out, evicted);
    }

    #[test]
    fn queued_tenants_run_in_later_waves() {
        let mut svc = service(AdmissionPolicy::Queue, 300);
        for _ in 0..3 {
            svc.register(TenantSpec::new(sequential_trace(MIB, 2), 200));
        }
        let report = svc.run();
        assert_eq!(report.waves.len(), 3);
        assert_eq!(report.admission.admitted_count(), 3);
        assert!(report.admission.rejected.is_empty());
        for wave in &report.waves {
            assert_eq!(wave.tenants.len(), 1);
            assert!(wave.tenants[0].1.accesses > 0);
        }
    }

    #[test]
    fn churn_runs_are_deterministic_and_counted() {
        use leap::FaultSpec;

        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .seed(11)
            .fault_plan(FaultSpec::canonical_storm())
            .build()
            .unwrap();
        let mut svc = FarMemoryService::new(config, 10_000, AdmissionPolicy::Reject);
        svc.register(TenantSpec::new(sequential_trace(MIB, 3), 64));
        let a = svc.run();
        let b = svc.run();
        let wave = &a.waves[0];
        assert!(
            !wave.result.fault_stats.is_quiet(),
            "the storm plan must touch the wave's replay"
        );
        assert_eq!(
            wave.result.fault_stats, b.waves[0].result.fault_stats,
            "fault accounting must replay bit-identically"
        );
        assert_eq!(wave.tenants[0].1, b.waves[0].tenants[0].1);
    }

    #[test]
    fn recovery_actions_surface_in_tenant_qos() {
        use leap::{FaultSpec, RecoveryPolicy};

        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .seed(11)
            .fault_plan(FaultSpec::canonical_partition_storm())
            .recovery_policy(RecoveryPolicy::tail_tolerant())
            .build()
            .unwrap();
        let mut svc = FarMemoryService::new(config, 10_000, AdmissionPolicy::Reject);
        svc.register(TenantSpec::new(sequential_trace(MIB, 3), 64));
        let a = svc.run();
        let b = svc.run();
        let wave = &a.waves[0];
        assert!(
            !wave.result.recovery_stats.is_quiet(),
            "the partition storm must exercise the recovery layer"
        );
        // Every measured access is tagged with its pid, so the tenant
        // ledger can only account a subset of the global stats (the
        // prepopulation phase runs untagged).
        let ledger = wave.tenants[0].1.recovery;
        let stats = &wave.result.recovery_stats;
        assert!(ledger.retries <= stats.retries);
        assert!(ledger.hedges_won <= stats.hedges_won);
        assert!(ledger.degraded_reads <= stats.degraded_reads);
        assert_eq!(
            wave.tenants[0].1, b.waves[0].tenants[0].1,
            "per-tenant recovery QoS must replay bit-identically"
        );
        assert_eq!(wave.result.recovery_stats, b.waves[0].result.recovery_stats);
    }

    #[test]
    fn service_runs_are_deterministic() {
        let mut svc = service(AdmissionPolicy::Reject, 10_000);
        for seed in 0..3 {
            let base = sequential_trace(MIB, 2);
            let trace = AccessTrace::new(format!("t{seed}"), base.iter().copied().collect());
            svc.register(TenantSpec::new(trace, 128));
        }
        let a = svc.run();
        let b = svc.run();
        assert_eq!(a.admission, b.admission);
        for (wa, wb) in a.waves.iter().zip(&b.waves) {
            assert_eq!(wa.makespan, wb.makespan);
            for ((ia, ra), (ib, rb)) in wa.tenants.iter().zip(&wb.tenants) {
                assert_eq!(ia, ib);
                assert_eq!(ra, rb);
            }
        }
    }
}
