//! A multi-tenant far-memory paging service on top of the Leap engine.
//!
//! This crate turns the single-run simulator core into a *service*: many
//! tenants — each one an access trace (typically ingested from a real fault
//! log via [`leap_workloads::ingest`]) plus a resident-memory budget —
//! are admitted against the service's local-memory capacity, co-scheduled
//! in waves, and replayed through [`leap::VmmSimulator`] with their budgets
//! enforced by the engine's cgroup-style tenant ledger.
//!
//! The service reports per-tenant QoS ([`TenantQosReport`]): paging
//! throughput, p50/p99 fault latency, cache hit ratio, and two checksums
//! pinning determinism — a latency-blind *behavior* checksum (invariant
//! across [`leap::SimConfigBuilder::async_depth`] settings when the engine
//! makes the same decisions) and a full *timing* checksum (bit-identical
//! across [`leap::ReplayMode`]s).
//!
//! ```
//! use leap::SimConfig;
//! use leap_service::{AdmissionPolicy, FarMemoryService, TenantSpec};
//! use leap_sim_core::units::MIB;
//!
//! let config = SimConfig::builder().memory_fraction(0.5).build().unwrap();
//! let mut service = FarMemoryService::new(config, 1_000, AdmissionPolicy::Queue);
//! service.register(TenantSpec::new(leap_workloads::sequential_trace(MIB, 2), 128));
//! service.register(TenantSpec::new(leap_workloads::stride_trace(MIB, 10, 2), 900));
//! let report = service.run();
//! assert_eq!(report.admission.admitted_count(), 2);
//! assert_eq!(report.waves.len(), 2); // 128 + 900 pages do not fit together
//! ```

#![warn(missing_docs)]

pub mod qos;
pub mod service;
pub mod tenant;

pub use qos::{TenantQos, TenantQosReport};
pub use service::{FarMemoryService, ServiceReport, WaveReport};
pub use tenant::{AdmissionPolicy, AdmissionReport, TenantId, TenantRegistry, TenantSpec};
