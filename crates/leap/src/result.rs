//! Results of a simulation run.

use crate::pipeline::PipelineStats;
use leap_metrics::{CacheStats, LatencyHistogram, PrefetchOutcomes, PrefetchStats};
use leap_remote::{FaultInjectionStats, RecoveryStats, TenantRecovery};
use leap_sim_core::Nanos;
use std::collections::BTreeMap;

/// Everything a run produces: latency distributions, cache and prefetch
/// statistics, and the application-level completion time.
///
/// Which fields matter depends on the experiment: Figures 2/7/8a read the
/// remote-access latency distribution, Figure 9 reads the cache statistics,
/// Figure 10 reads accuracy/coverage/timeliness, Figures 11–13 read
/// completion time and throughput, and Figure 4 reads the lazy-eviction wait
/// distribution.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Label of the configuration that produced the result.
    pub config_label: String,
    /// Name of the workload trace.
    pub workload: String,
    /// End-to-end completion time (compute + memory stalls).
    pub completion_time: Nanos,
    /// Total accesses replayed.
    pub total_accesses: u64,
    /// Accesses that touched a non-resident, previously swapped-out page
    /// (the paper's "remote page accesses").
    pub remote_accesses: u64,
    /// First-touch (demand-zero) minor faults.
    pub first_touch_faults: u64,
    /// Latency distribution of remote page accesses (cache hits and misses).
    pub remote_access_latency: LatencyHistogram,
    /// Latency distribution of every access, including local hits.
    pub access_latency: LatencyHistogram,
    /// Cache behaviour counters.
    pub cache_stats: CacheStats,
    /// Prefetch accuracy / coverage / timeliness.
    pub prefetch_stats: PrefetchStats,
    /// Prefetch outcome classification: every prefetched page is *covered*
    /// (demanded before eviction) or *wasted* (evicted unused, or still
    /// unconsumed when the run sealed), with an order-sensitive per-shard
    /// FNV checksum merged commutatively across shards.
    pub prefetch_outcomes: PrefetchOutcomes,
    /// Time consumed prefetched pages waited in the cache after their first
    /// hit before the lazy reclaimer freed them (Figure 4); empty under eager
    /// eviction.
    pub eviction_wait: LatencyHistogram,
    /// Time spent waiting for page allocation (reclaim scans) on the fault
    /// path.
    pub allocation_wait: LatencyHistogram,
    /// Pages written back to the slower tier (swap-outs).
    pub pages_swapped_out: u64,
    /// Async request/completion pipeline counters (prefetch reads,
    /// write-backs, budget stall); merged across shards.
    pub pipeline: PipelineStats,
    /// Fault-injection accounting: requests hit by latency spikes, degraded
    /// bandwidth or reconnect storms, machines failed, slabs re-replicated,
    /// and an order-sensitive per-shard checksum merged commutatively across
    /// shards. Quiet (all-zero) when no fault plan was installed.
    pub fault_stats: FaultInjectionStats,
    /// Swap-outs attributed per tenant (`pid.0` → pages evicted from that
    /// tenant's residency), keyed with a `BTreeMap` so iteration — and
    /// therefore any report built from it — is deterministic.
    pub tenant_evictions: BTreeMap<u32, u64>,
    /// Request-recovery accounting: deadline timeouts, retries, hedged
    /// reads issued/won/wasted, degraded (disk-path) reads, partition
    /// fail-fasts, and a commutative checksum merged across shards. Quiet
    /// (all-zero) when no recovery policy was installed.
    pub recovery_stats: RecoveryStats,
    /// Recovery actions attributed per tenant (`pid.0` → that tenant's
    /// retries, hedge wins, and degraded reads); empty for untagged runs.
    pub tenant_recovery: BTreeMap<u32, TenantRecovery>,
}

impl RunResult {
    /// Remote page accesses observed (cache hits + misses).
    pub fn remote_accesses(&self) -> u64 {
        self.remote_accesses
    }

    /// Completion time in seconds.
    pub fn completion_seconds(&self) -> f64 {
        self.completion_time.as_secs_f64()
    }

    /// Throughput in accesses per second of completion time.
    ///
    /// The paper reports VoltDB in transactions/s and Memcached in
    /// operations/s; both are proportional to accesses per second for a fixed
    /// trace, so ratios between configurations are preserved.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        let secs = self.completion_seconds();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_accesses as f64 / secs
    }

    /// Median remote-access latency.
    pub fn median_remote_latency(&mut self) -> Nanos {
        self.remote_access_latency.median()
    }

    /// 99th-percentile remote-access latency.
    pub fn p99_remote_latency(&mut self) -> Nanos {
        self.remote_access_latency.percentile(99.0)
    }

    /// The fraction of remote accesses served by the prefetch/swap cache.
    pub fn cache_hit_ratio(&self) -> f64 {
        self.cache_stats.hit_ratio()
    }

    /// Folds one per-core shard worker's partial result into this aggregate.
    ///
    /// Counters add, histograms concatenate in call order; callers must fold
    /// shards in ascending core order so aggregation is deterministic
    /// regardless of replay mode. `completion_time` is *not* touched — the
    /// makespan comes from the scheduler, not from any single shard.
    pub fn absorb_shard(&mut self, shard: RunResult) {
        self.total_accesses += shard.total_accesses;
        self.remote_accesses += shard.remote_accesses;
        self.first_touch_faults += shard.first_touch_faults;
        self.pages_swapped_out += shard.pages_swapped_out;
        self.remote_access_latency
            .merge(&shard.remote_access_latency);
        self.access_latency.merge(&shard.access_latency);
        self.cache_stats.merge(&shard.cache_stats);
        self.prefetch_stats.merge(&shard.prefetch_stats);
        self.prefetch_outcomes.merge(&shard.prefetch_outcomes);
        self.eviction_wait.merge(&shard.eviction_wait);
        self.allocation_wait.merge(&shard.allocation_wait);
        self.pipeline.merge(&shard.pipeline);
        self.fault_stats.merge(&shard.fault_stats);
        for (pid, pages) in shard.tenant_evictions {
            *self.tenant_evictions.entry(pid).or_insert(0) += pages;
        }
        self.recovery_stats.merge(&shard.recovery_stats);
        for (pid, ledger) in shard.tenant_recovery {
            self.tenant_recovery.entry(pid).or_default().merge(&ledger);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_result_is_empty() {
        let r = RunResult::default();
        assert_eq!(r.remote_accesses(), 0);
        assert_eq!(r.throughput_ops_per_sec(), 0.0);
        assert_eq!(r.completion_seconds(), 0.0);
    }

    #[test]
    fn throughput_uses_completion_time() {
        let r = RunResult {
            total_accesses: 1_000,
            completion_time: Nanos::from_secs(2),
            ..RunResult::default()
        };
        assert!((r.throughput_ops_per_sec() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn latency_accessors_read_the_histogram() {
        let mut r = RunResult::default();
        for us in [1u64, 2, 3, 4, 100] {
            r.remote_access_latency.record(Nanos::from_micros(us));
        }
        assert_eq!(r.median_remote_latency(), Nanos::from_micros(3));
        assert_eq!(r.p99_remote_latency(), Nanos::from_micros(100));
    }
}
