//! Configuration errors.

use std::fmt;

/// Why a [`crate::SimConfig`] failed to validate.
///
/// Produced by [`crate::SimConfigBuilder::build`] and by
/// [`crate::SimConfig::from_json`]. Each variant names the offending knob so
/// experiment scripts can report actionable errors instead of panicking deep
/// inside a run.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `memory_fraction` must lie in `(0, 1]`.
    MemoryFractionOutOfRange(f64),
    /// `history_size` (the paper's `Hsize`) must be nonzero.
    ZeroHistorySize,
    /// `max_prefetch_window` (the paper's `PWsize_max`) must be nonzero.
    ZeroPrefetchWindow,
    /// `cores` must be nonzero (there is at least one dispatch queue).
    ZeroCores,
    /// `sched_quantum` must be nonzero: a zero-length time slice would make
    /// the multi-process scheduler context-switch after every access without
    /// any process ever making progress within a slice.
    ZeroQuantum,
    /// `prefetch_cache_pages` must be nonzero; a zero-capacity cache would
    /// silently disable prefetching while the prefetcher still pays for it.
    ZeroPrefetchCache,
    /// `async_depth` must be nonzero: a zero in-flight budget could never
    /// admit a request. Depth 1 is the synchronous-billing degenerate case;
    /// `usize::MAX` (the default) is unbounded asynchrony.
    ZeroAsyncDepth,
    /// `context_switch_cost` is implausibly large (more than
    /// [`crate::config::MAX_CONTEXT_SWITCH`]); almost certainly a unit
    /// mistake.
    ContextSwitchTooLarge {
        /// The configured cost.
        cost: leap_sim_core::Nanos,
        /// The accepted maximum.
        max: leap_sim_core::Nanos,
    },
    /// A bounded prefetch cache must hold at least one full prefetch window,
    /// otherwise every prefetch batch evicts its own earlier pages before
    /// they can be consumed and the eviction policy degenerates to thrash.
    CacheSmallerThanWindow {
        /// Configured cache capacity in pages.
        cache_pages: u64,
        /// Configured maximum prefetch window.
        window: usize,
    },
    /// A backend latency override must be nonzero.
    ZeroBackendLatency {
        /// Which override was zero: `"read"` or `"write"`.
        which: &'static str,
    },
    /// A component name was not found in the registry.
    UnknownComponent {
        /// Which registry was consulted: `"prefetcher"`, `"data-path"`, or
        /// `"eviction"`.
        role: &'static str,
        /// The requested name.
        name: String,
    },
    /// [`crate::SimConfigBuilder::build`] was called while a custom or
    /// named component selection is pending. Plain [`crate::SimConfig`]
    /// cannot carry components; use
    /// [`crate::SimConfigBuilder::build_setup`] (or `build_vmm` /
    /// `build_vfs`) so the selection is honoured instead of dropped.
    ComponentsRequireSetup {
        /// Which selection is pending: `"prefetcher"`, `"data-path"`, or
        /// `"eviction"`.
        role: &'static str,
    },
    /// The fault-injection spec is inconsistent (see
    /// [`leap_remote::FaultSpec::validate`]).
    InvalidFaultSpec {
        /// What the fault spec got wrong.
        reason: &'static str,
    },
    /// The recovery policy is inconsistent (see
    /// [`leap_remote::RecoveryPolicy::validate`]).
    InvalidRecoveryPolicy {
        /// What the recovery policy got wrong.
        reason: &'static str,
    },
    /// A serialized config could not be parsed.
    Parse(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MemoryFractionOutOfRange(v) => {
                write!(f, "memory_fraction must be in (0, 1], got {v}")
            }
            ConfigError::ZeroHistorySize => write!(f, "history_size must be nonzero"),
            ConfigError::ZeroPrefetchWindow => write!(f, "max_prefetch_window must be nonzero"),
            ConfigError::ZeroCores => write!(f, "cores must be nonzero"),
            ConfigError::ZeroQuantum => write!(f, "sched_quantum must be nonzero"),
            ConfigError::ZeroPrefetchCache => write!(f, "prefetch_cache_pages must be nonzero"),
            ConfigError::ZeroAsyncDepth => write!(f, "async_depth must be nonzero"),
            ConfigError::ContextSwitchTooLarge { cost, max } => write!(
                f,
                "context_switch_cost of {cost} exceeds the plausible maximum of {max} \
                 (check the unit: the knob is in nanoseconds)"
            ),
            ConfigError::CacheSmallerThanWindow {
                cache_pages,
                window,
            } => write!(
                f,
                "prefetch cache of {cache_pages} pages cannot hold one \
                 max_prefetch_window of {window} pages"
            ),
            ConfigError::ZeroBackendLatency { which } => {
                write!(f, "backend {which} latency override must be nonzero")
            }
            ConfigError::UnknownComponent { role, name } => {
                write!(f, "no {role} component named {name:?} is registered")
            }
            ConfigError::ComponentsRequireSetup { role } => write!(
                f,
                "a custom/named {role} selection is pending; build_setup() \
                 (or build_vmm()/build_vfs()) must be used so it is not dropped"
            ),
            ConfigError::InvalidFaultSpec { reason } => {
                write!(f, "invalid fault spec: {reason}")
            }
            ConfigError::InvalidRecoveryPolicy { reason } => {
                write!(f, "invalid recovery policy: {reason}")
            }
            ConfigError::Parse(msg) => write!(f, "config parse error: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}
