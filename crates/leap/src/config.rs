//! Simulation configuration.

use leap_prefetcher::PrefetcherKind;
use leap_remote::BackendKind;
use serde::{Deserialize, Serialize};

/// Which data path serves cache misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataPathKind {
    /// The default Linux block-layer path (§2.2, Figure 1).
    LinuxDefault,
    /// Leap's lean path that bypasses the block layer (§4.4).
    Leap,
}

impl DataPathKind {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DataPathKind::LinuxDefault => "linux-default",
            DataPathKind::Leap => "leap",
        }
    }
}

/// Which prefetch-cache eviction policy is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Kernel-style lazy background LRU reclaim (§2.3).
    Lazy,
    /// Leap's eager free-on-hit plus FIFO reclaim of unconsumed prefetches
    /// (§4.3).
    Eager,
}

impl EvictionPolicy {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::Lazy => "lazy",
            EvictionPolicy::Eager => "eager",
        }
    }
}

/// Full configuration of one simulation run.
///
/// The two canonical configurations are [`SimConfig::linux_defaults`] (the
/// baseline the paper calls "D-VMM": Linux data path, Read-Ahead prefetcher,
/// lazy eviction) and [`SimConfig::leap_defaults`] ("D-VMM+Leap": lean data
/// path, majority-trend prefetcher, eager eviction). Every field can be
/// overridden to build the ablations in Figures 8–10 and 12.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The prefetching algorithm.
    pub prefetcher: PrefetcherKind,
    /// The data path used on prefetch-cache misses.
    pub data_path: DataPathKind,
    /// The slower tier backing swapped-out pages.
    pub backend: BackendKind,
    /// The prefetch-cache eviction policy.
    pub eviction: EvictionPolicy,
    /// Local memory limit as a fraction of the working set (the paper's
    /// 100 % / 50 % / 25 % configurations).
    pub memory_fraction: f64,
    /// Prefetch-cache capacity in pages; `u64::MAX` means unbounded
    /// (Figure 12 constrains this).
    pub prefetch_cache_pages: u64,
    /// `Hsize`: access-history length for Leap's prefetcher.
    pub history_size: usize,
    /// `PWsize_max`: maximum prefetch window.
    pub max_prefetch_window: usize,
    /// Number of CPU cores (per-core RDMA dispatch queues).
    pub cores: usize,
    /// When several processes run, whether each gets its own isolated
    /// prefetcher state (Leap) or they share one (Linux's shared swap path).
    pub per_process_isolation: bool,
    /// RNG seed; equal seeds reproduce runs exactly.
    pub seed: u64,
}

impl SimConfig {
    /// The baseline configuration: Linux data path, Read-Ahead prefetching,
    /// lazy eviction, no per-process isolation.
    pub fn linux_defaults() -> Self {
        SimConfig {
            prefetcher: PrefetcherKind::ReadAhead,
            data_path: DataPathKind::LinuxDefault,
            backend: BackendKind::Rdma,
            eviction: EvictionPolicy::Lazy,
            memory_fraction: 0.5,
            prefetch_cache_pages: u64::MAX,
            history_size: 32,
            max_prefetch_window: 8,
            cores: 8,
            per_process_isolation: false,
            seed: 42,
        }
    }

    /// The full Leap configuration: lean data path, majority-trend
    /// prefetcher, eager eviction, per-process isolation.
    pub fn leap_defaults() -> Self {
        SimConfig {
            prefetcher: PrefetcherKind::Leap,
            data_path: DataPathKind::Leap,
            eviction: EvictionPolicy::Eager,
            per_process_isolation: true,
            ..SimConfig::linux_defaults()
        }
    }

    /// Paging to a local disk instead of remote memory (the "Disk" bars in
    /// Figure 11), using the default Linux machinery.
    pub fn disk_defaults(backend: BackendKind) -> Self {
        SimConfig {
            backend,
            ..SimConfig::linux_defaults()
        }
    }

    /// Overrides the prefetcher.
    pub fn with_prefetcher(mut self, prefetcher: PrefetcherKind) -> Self {
        self.prefetcher = prefetcher;
        self
    }

    /// Overrides the data path.
    pub fn with_data_path(mut self, data_path: DataPathKind) -> Self {
        self.data_path = data_path;
        self
    }

    /// Overrides the backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Overrides the local-memory fraction (clamped to `(0, 1]`).
    pub fn with_memory_fraction(mut self, fraction: f64) -> Self {
        self.memory_fraction = fraction.clamp(0.01, 1.0);
        self
    }

    /// Overrides the prefetch-cache capacity in pages.
    pub fn with_prefetch_cache_pages(mut self, pages: u64) -> Self {
        self.prefetch_cache_pages = pages;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides per-process isolation.
    pub fn with_isolation(mut self, isolated: bool) -> Self {
        self.per_process_isolation = isolated;
        self
    }

    /// A short label of the configuration for report rows, e.g.
    /// `"leap/Leap/eager @50%"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{} @{:.0}%",
            self.data_path.label(),
            self.prefetcher.label(),
            self.eviction.label(),
            self.memory_fraction * 100.0
        )
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::leap_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_configs_differ_where_expected() {
        let linux = SimConfig::linux_defaults();
        let leap = SimConfig::leap_defaults();
        assert_eq!(linux.prefetcher, PrefetcherKind::ReadAhead);
        assert_eq!(leap.prefetcher, PrefetcherKind::Leap);
        assert_eq!(linux.data_path, DataPathKind::LinuxDefault);
        assert_eq!(leap.data_path, DataPathKind::Leap);
        assert_eq!(linux.eviction, EvictionPolicy::Lazy);
        assert_eq!(leap.eviction, EvictionPolicy::Eager);
        assert!(!linux.per_process_isolation);
        assert!(leap.per_process_isolation);
        // Shared knobs stay identical so comparisons are apples-to-apples.
        assert_eq!(linux.memory_fraction, leap.memory_fraction);
        assert_eq!(linux.history_size, leap.history_size);
    }

    #[test]
    fn builders_override_fields() {
        let config = SimConfig::leap_defaults()
            .with_memory_fraction(0.25)
            .with_prefetcher(PrefetcherKind::Stride)
            .with_backend(BackendKind::Ssd)
            .with_prefetch_cache_pages(800)
            .with_seed(9)
            .with_isolation(false)
            .with_eviction(EvictionPolicy::Lazy)
            .with_data_path(DataPathKind::LinuxDefault);
        assert_eq!(config.memory_fraction, 0.25);
        assert_eq!(config.prefetcher, PrefetcherKind::Stride);
        assert_eq!(config.backend, BackendKind::Ssd);
        assert_eq!(config.prefetch_cache_pages, 800);
        assert_eq!(config.seed, 9);
        assert!(!config.per_process_isolation);
        assert_eq!(config.eviction, EvictionPolicy::Lazy);
        assert_eq!(config.data_path, DataPathKind::LinuxDefault);
    }

    #[test]
    fn memory_fraction_is_clamped() {
        assert_eq!(
            SimConfig::leap_defaults()
                .with_memory_fraction(3.0)
                .memory_fraction,
            1.0
        );
        assert!(
            SimConfig::leap_defaults()
                .with_memory_fraction(-1.0)
                .memory_fraction
                > 0.0
        );
    }

    #[test]
    fn labels_are_informative() {
        let label = SimConfig::leap_defaults().with_memory_fraction(0.5).label();
        assert!(label.contains("leap"));
        assert!(label.contains("50%"));
        assert_eq!(DataPathKind::LinuxDefault.label(), "linux-default");
        assert_eq!(EvictionPolicy::Eager.label(), "eager");
    }

    #[test]
    fn disk_defaults_use_requested_backend() {
        let config = SimConfig::disk_defaults(BackendKind::Hdd);
        assert_eq!(config.backend, BackendKind::Hdd);
        assert_eq!(config.data_path, DataPathKind::LinuxDefault);
    }
}
