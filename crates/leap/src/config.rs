//! Simulation configuration.
//!
//! [`SimConfig`] is plain, copyable data: every knob of one simulation run.
//! Construct it through [`SimConfig::builder`], which validates the
//! combination at [`build`](crate::SimConfigBuilder::build) time, or start
//! from one of the canonical presets ([`SimConfig::linux_defaults`],
//! [`SimConfig::leap_defaults`]) and refine via
//! [`SimConfig::to_builder`]. (The legacy `with_*` copy-setters, deprecated
//! since 0.2.0, were removed in 0.4.0.)

use crate::builder::SimConfigBuilder;
use crate::error::ConfigError;
use leap_prefetcher::PrefetcherKind;
use leap_remote::{BackendKind, FaultSpec, RecoveryPolicy};
use leap_sim_core::Nanos;
use serde::{Deserialize, Serialize};

/// Which data path serves cache misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataPathKind {
    /// The default Linux block-layer path (§2.2, Figure 1).
    LinuxDefault,
    /// Leap's lean path that bypasses the block layer (§4.4).
    Leap,
}

impl DataPathKind {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DataPathKind::LinuxDefault => "linux-default",
            DataPathKind::Leap => "leap",
        }
    }

    /// The inverse of [`DataPathKind::label`], used when parsing serialized
    /// configurations.
    pub fn from_label(label: &str) -> Option<Self> {
        [DataPathKind::LinuxDefault, DataPathKind::Leap]
            .into_iter()
            .find(|k| k.label() == label)
    }
}

/// How a multi-process replay ([`crate::Simulator::run_multi`]) is executed.
///
/// Both modes run the *same* deterministic schedule over the same per-core
/// shard state and produce bit-identical [`crate::RunResult`]s for a given
/// seed; they differ only in what drives the shards:
///
/// - [`ReplayMode::Serial`] steps every core shard on one OS thread,
///   interleaved by the time-sliced scheduler in [`crate::sched`]. This is
///   the reference implementation.
/// - [`ReplayMode::Threaded`] runs one OS thread per core shard (the shards
///   share no mutable state), then deterministically merges the per-core
///   event buffers by `(core, seq)` after the join. Wall-clock time scales
///   with host cores; simulated results do not change.
///
/// Front-ends without per-core shard state (the VFS simulator) replay
/// serially regardless of the configured mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayMode {
    /// One OS thread steps all core shards, interleaved (the reference).
    Serial,
    /// One OS thread per core shard, merged deterministically after the join.
    Threaded,
}

impl ReplayMode {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ReplayMode::Serial => "serial",
            ReplayMode::Threaded => "threaded",
        }
    }

    /// The inverse of [`ReplayMode::label`], used when parsing serialized
    /// configurations.
    pub fn from_label(label: &str) -> Option<Self> {
        [ReplayMode::Serial, ReplayMode::Threaded]
            .into_iter()
            .find(|k| k.label() == label)
    }
}

/// Which prefetch-cache eviction policy is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Kernel-style lazy background LRU reclaim (§2.3).
    Lazy,
    /// Leap's eager free-on-hit plus FIFO reclaim of unconsumed prefetches
    /// (§4.3).
    Eager,
}

impl EvictionPolicy {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::Lazy => "lazy",
            EvictionPolicy::Eager => "eager",
        }
    }

    /// The inverse of [`EvictionPolicy::label`], used when parsing serialized
    /// configurations.
    pub fn from_label(label: &str) -> Option<Self> {
        [EvictionPolicy::Lazy, EvictionPolicy::Eager]
            .into_iter()
            .find(|k| k.label() == label)
    }
}

/// Full configuration of one simulation run.
///
/// The two canonical configurations are [`SimConfig::linux_defaults`] (the
/// baseline the paper calls "D-VMM": Linux data path, Read-Ahead prefetcher,
/// lazy eviction) and [`SimConfig::leap_defaults`] ("D-VMM+Leap": lean data
/// path, majority-trend prefetcher, eager eviction). Every field can be
/// overridden to build the ablations in Figures 8–10 and 12; use
/// [`SimConfig::builder`] / [`SimConfig::to_builder`] so invalid
/// combinations are rejected with a [`ConfigError`] instead of surfacing as
/// nonsense results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The prefetching algorithm.
    pub prefetcher: PrefetcherKind,
    /// The data path used on prefetch-cache misses.
    pub data_path: DataPathKind,
    /// The slower tier backing swapped-out pages.
    pub backend: BackendKind,
    /// The prefetch-cache eviction policy.
    pub eviction: EvictionPolicy,
    /// Local memory limit as a fraction of the working set (the paper's
    /// 100 % / 50 % / 25 % configurations).
    pub memory_fraction: f64,
    /// Prefetch-cache capacity in pages; `u64::MAX` means unbounded
    /// (Figure 12 constrains this).
    pub prefetch_cache_pages: u64,
    /// `Hsize`: access-history length for Leap's prefetcher.
    pub history_size: usize,
    /// `PWsize_max`: maximum prefetch window.
    pub max_prefetch_window: usize,
    /// Number of CPU cores (per-core RDMA dispatch queues; also the number
    /// of run queues and swap/cache shards of a scheduled multi-process
    /// replay).
    pub cores: usize,
    /// Scheduler time slice of a multi-process replay
    /// ([`crate::Simulator::run_multi`]): a process runs on its core for one
    /// quantum of simulated time before the next process in that core's run
    /// queue is switched in.
    pub sched_quantum: Nanos,
    /// Simulated cost of one context switch (register/TLB state plus the
    /// scheduler's own bookkeeping), charged whenever a core's run queue
    /// rotates. Defaults to [`crate::sched::CONTEXT_SWITCH`] (2 µs).
    pub context_switch_cost: Nanos,
    /// How multi-process replays execute: one thread interleaving all core
    /// shards ([`ReplayMode::Serial`], the reference) or one OS thread per
    /// core shard ([`ReplayMode::Threaded`]). Simulated results are
    /// bit-identical either way.
    pub replay_mode: ReplayMode,
    /// When several processes run, whether each gets its own isolated
    /// prefetcher state (Leap) or they share one (Linux's shared swap path).
    pub per_process_isolation: bool,
    /// In-flight budget of the per-shard async I/O pipeline
    /// ([`crate::AsyncPipeline`]): how many asynchronous remote requests
    /// (prefetch reads, write-backs) may be outstanding before a submitter
    /// stalls. `usize::MAX` (the default) models unbounded asynchrony — the
    /// legacy free-overlap accounting, bit-for-bit; `1` disables asynchrony
    /// entirely, billing every async I/O synchronously. Validated nonzero.
    pub async_depth: usize,
    /// RNG seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Overrides the backend's 4 KB read latency with a constant (for
    /// what-if studies against hypothetical devices); `None` keeps the
    /// paper-calibrated distribution.
    pub backend_read_latency: Option<Nanos>,
    /// Overrides the backend's 4 KB write latency with a constant; `None`
    /// keeps the paper-calibrated distribution.
    pub backend_write_latency: Option<Nanos>,
    /// Fault-injection spec for the remote tier
    /// ([`FaultSpec::none`] by default, a healthy fabric). Expanded into a
    /// concrete [`leap_remote::FaultPlan`] from `(seed, fault)` when the
    /// data path is built; set via
    /// [`fault_plan`](crate::SimConfigBuilder::fault_plan).
    pub fault: FaultSpec,
    /// Request-recovery policy for the remote tier
    /// ([`RecoveryPolicy::none`] by default: no deadlines, no hedging —
    /// byte-identical to a build without the recovery layer). Installed on
    /// the lean data path's host agent when active; set via
    /// [`recovery_policy`](crate::SimConfigBuilder::recovery_policy).
    pub recovery: RecoveryPolicy,
}

/// Upper bound accepted for [`SimConfig::context_switch_cost`]. Real context
/// switches cost single-digit microseconds; anything beyond 100 ms is almost
/// certainly a unit mistake (ns vs ms), so validation rejects it.
pub const MAX_CONTEXT_SWITCH: Nanos = Nanos::from_millis(100);

impl SimConfig {
    /// Starts a validated builder from [`SimConfig::default`]
    /// (= [`SimConfig::leap_defaults`]).
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Starts a validated builder from this configuration.
    pub fn to_builder(self) -> SimConfigBuilder {
        SimConfigBuilder::from_config(self)
    }

    /// The baseline configuration: Linux data path, Read-Ahead prefetching,
    /// lazy eviction, no per-process isolation.
    pub fn linux_defaults() -> Self {
        SimConfig {
            prefetcher: PrefetcherKind::ReadAhead,
            data_path: DataPathKind::LinuxDefault,
            backend: BackendKind::Rdma,
            eviction: EvictionPolicy::Lazy,
            memory_fraction: 0.5,
            prefetch_cache_pages: u64::MAX,
            history_size: 32,
            max_prefetch_window: 8,
            cores: 8,
            sched_quantum: Nanos::from_millis(1),
            context_switch_cost: crate::sched::CONTEXT_SWITCH,
            replay_mode: ReplayMode::Serial,
            per_process_isolation: false,
            async_depth: usize::MAX,
            seed: 42,
            backend_read_latency: None,
            backend_write_latency: None,
            fault: FaultSpec::none(),
            recovery: RecoveryPolicy::none(),
        }
    }

    /// The full Leap configuration: lean data path, majority-trend
    /// prefetcher, eager eviction, per-process isolation.
    pub fn leap_defaults() -> Self {
        SimConfig {
            prefetcher: PrefetcherKind::Leap,
            data_path: DataPathKind::Leap,
            eviction: EvictionPolicy::Eager,
            per_process_isolation: true,
            ..SimConfig::linux_defaults()
        }
    }

    /// Paging to a local disk instead of remote memory (the "Disk" bars in
    /// Figure 11), using the default Linux machinery.
    pub fn disk_defaults(backend: BackendKind) -> Self {
        SimConfig {
            backend,
            ..SimConfig::linux_defaults()
        }
    }

    /// Validates this configuration (the same checks
    /// [`SimConfigBuilder::build`] runs).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.memory_fraction > 0.0 && self.memory_fraction <= 1.0) {
            return Err(ConfigError::MemoryFractionOutOfRange(self.memory_fraction));
        }
        if self.history_size == 0 {
            return Err(ConfigError::ZeroHistorySize);
        }
        if self.max_prefetch_window == 0 {
            return Err(ConfigError::ZeroPrefetchWindow);
        }
        if self.cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if self.sched_quantum == Nanos::ZERO {
            return Err(ConfigError::ZeroQuantum);
        }
        if self.context_switch_cost > MAX_CONTEXT_SWITCH {
            return Err(ConfigError::ContextSwitchTooLarge {
                cost: self.context_switch_cost,
                max: MAX_CONTEXT_SWITCH,
            });
        }
        if self.prefetch_cache_pages == 0 {
            return Err(ConfigError::ZeroPrefetchCache);
        }
        if self.async_depth == 0 {
            return Err(ConfigError::ZeroAsyncDepth);
        }
        if self.prefetch_cache_pages != u64::MAX
            && self.prefetch_cache_pages < self.max_prefetch_window as u64
        {
            return Err(ConfigError::CacheSmallerThanWindow {
                cache_pages: self.prefetch_cache_pages,
                window: self.max_prefetch_window,
            });
        }
        if self.backend_read_latency == Some(Nanos::ZERO) {
            return Err(ConfigError::ZeroBackendLatency { which: "read" });
        }
        if self.backend_write_latency == Some(Nanos::ZERO) {
            return Err(ConfigError::ZeroBackendLatency { which: "write" });
        }
        self.fault
            .validate()
            .map_err(|reason| ConfigError::InvalidFaultSpec { reason })?;
        self.recovery
            .validate()
            .map_err(|reason| ConfigError::InvalidRecoveryPolicy { reason })?;
        Ok(())
    }

    /// A short label of the configuration for report rows, e.g.
    /// `"leap/Leap/eager @50%"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{} @{:.0}%",
            self.data_path.label(),
            self.prefetcher.label(),
            self.eviction.label(),
            self.memory_fraction * 100.0
        )
    }

    /// Serializes the configuration to a flat JSON object.
    ///
    /// The format is stable and explicit (no serde involvement — see
    /// `vendor/README.md`): enum fields use their `label()` strings, latency
    /// overrides serialize as nanoseconds or `null`.
    pub fn to_json(&self) -> String {
        fn opt_nanos(v: Option<Nanos>) -> String {
            match v {
                Some(n) => n.as_nanos().to_string(),
                None => "null".to_string(),
            }
        }
        format!(
            concat!(
                "{{",
                "\"prefetcher\":\"{}\",",
                "\"data_path\":\"{}\",",
                "\"backend\":\"{}\",",
                "\"eviction\":\"{}\",",
                "\"memory_fraction\":{},",
                "\"prefetch_cache_pages\":{},",
                "\"history_size\":{},",
                "\"max_prefetch_window\":{},",
                "\"cores\":{},",
                "\"sched_quantum_ns\":{},",
                "\"context_switch_ns\":{},",
                "\"replay_mode\":\"{}\",",
                "\"per_process_isolation\":{},",
                "\"async_depth\":{},",
                "\"seed\":{},",
                "\"backend_read_latency_ns\":{},",
                "\"backend_write_latency_ns\":{},",
                "{},",
                "{}",
                "}}"
            ),
            self.prefetcher.label(),
            self.data_path.label(),
            self.backend.label(),
            self.eviction.label(),
            self.memory_fraction,
            self.prefetch_cache_pages,
            self.history_size,
            self.max_prefetch_window,
            self.cores,
            self.sched_quantum.as_nanos(),
            self.context_switch_cost.as_nanos(),
            self.replay_mode.label(),
            self.per_process_isolation,
            self.async_depth,
            self.seed,
            opt_nanos(self.backend_read_latency),
            opt_nanos(self.backend_write_latency),
            self.fault.to_json_fields(),
            self.recovery.to_json_fields(),
        )
    }

    /// Parses a configuration previously produced by [`SimConfig::to_json`]
    /// and validates it.
    ///
    /// Unknown keys are rejected; missing keys fall back to
    /// [`SimConfig::linux_defaults`] so the format can grow fields without
    /// breaking stored configs.
    pub fn from_json(text: &str) -> Result<Self, ConfigError> {
        let mut config = SimConfig::linux_defaults();
        let body = text.trim();
        let body = body
            .strip_prefix('{')
            .and_then(|b| b.strip_suffix('}'))
            .ok_or_else(|| ConfigError::Parse("expected a JSON object".into()))?;

        for pair in split_top_level_pairs(body) {
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| ConfigError::Parse(format!("expected key:value, got {pair:?}")))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| ConfigError::Parse(format!("unquoted key {key:?}")))?;
            let value = value.trim();
            match key {
                "prefetcher" => {
                    config.prefetcher =
                        PrefetcherKind::from_label(parse_str(value)?).ok_or_else(|| {
                            ConfigError::UnknownComponent {
                                role: "prefetcher",
                                name: value.trim_matches('"').to_string(),
                            }
                        })?
                }
                "data_path" => {
                    config.data_path =
                        DataPathKind::from_label(parse_str(value)?).ok_or_else(|| {
                            ConfigError::UnknownComponent {
                                role: "data-path",
                                name: value.trim_matches('"').to_string(),
                            }
                        })?
                }
                "backend" => {
                    config.backend =
                        BackendKind::from_label(parse_str(value)?).ok_or_else(|| {
                            ConfigError::UnknownComponent {
                                role: "backend",
                                name: value.trim_matches('"').to_string(),
                            }
                        })?
                }
                "eviction" => {
                    config.eviction =
                        EvictionPolicy::from_label(parse_str(value)?).ok_or_else(|| {
                            ConfigError::UnknownComponent {
                                role: "eviction",
                                name: value.trim_matches('"').to_string(),
                            }
                        })?
                }
                "memory_fraction" => config.memory_fraction = parse_num::<f64>(value)?,
                "prefetch_cache_pages" => config.prefetch_cache_pages = parse_num::<u64>(value)?,
                "history_size" => config.history_size = parse_num::<usize>(value)?,
                "max_prefetch_window" => config.max_prefetch_window = parse_num::<usize>(value)?,
                "cores" => config.cores = parse_num::<usize>(value)?,
                "sched_quantum_ns" => {
                    config.sched_quantum = Nanos::from_nanos(parse_num::<u64>(value)?)
                }
                "context_switch_ns" => {
                    config.context_switch_cost = Nanos::from_nanos(parse_num::<u64>(value)?)
                }
                "replay_mode" => {
                    config.replay_mode =
                        ReplayMode::from_label(parse_str(value)?).ok_or_else(|| {
                            ConfigError::UnknownComponent {
                                role: "replay-mode",
                                name: value.trim_matches('"').to_string(),
                            }
                        })?
                }
                "per_process_isolation" => config.per_process_isolation = parse_bool(value)?,
                "async_depth" => config.async_depth = parse_num::<usize>(value)?,
                "seed" => config.seed = parse_num::<u64>(value)?,
                "backend_read_latency_ns" => {
                    config.backend_read_latency = parse_opt_nanos(value)?;
                }
                "backend_write_latency_ns" => {
                    config.backend_write_latency = parse_opt_nanos(value)?;
                }
                other => {
                    // `fault_*` / `recovery_*` keys are parsed by their
                    // specs, so each schema lives in one place
                    // (crates/remote).
                    let consumed = config
                        .fault
                        .apply_json_field(other, value)
                        .map_err(|e| ConfigError::Parse(e.to_string()))?
                        || config
                            .recovery
                            .apply_json_field(other, value)
                            .map_err(ConfigError::Parse)?;
                    if !consumed {
                        return Err(ConfigError::Parse(format!("unknown key {other:?}")));
                    }
                }
            }
        }
        config.validate()?;
        Ok(config)
    }
}

/// Splits the body of a flat JSON object on top-level commas (no nested
/// objects/arrays exist in this format, but strings may contain commas).
fn split_top_level_pairs(body: &str) -> Vec<&str> {
    let mut pairs = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                pairs.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !body[start..].trim().is_empty() {
        pairs.push(&body[start..]);
    }
    pairs
}

fn parse_str(value: &str) -> Result<&str, ConfigError> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ConfigError::Parse(format!("expected a string, got {value}")))
}

fn parse_num<T: std::str::FromStr>(value: &str) -> Result<T, ConfigError> {
    value
        .parse::<T>()
        .map_err(|_| ConfigError::Parse(format!("expected a number, got {value}")))
}

fn parse_bool(value: &str) -> Result<bool, ConfigError> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(ConfigError::Parse(format!("expected a bool, got {other}"))),
    }
}

fn parse_opt_nanos(value: &str) -> Result<Option<Nanos>, ConfigError> {
    if value == "null" {
        Ok(None)
    } else {
        Ok(Some(Nanos::from_nanos(parse_num::<u64>(value)?)))
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::leap_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_configs_differ_where_expected() {
        let linux = SimConfig::linux_defaults();
        let leap = SimConfig::leap_defaults();
        assert_eq!(linux.prefetcher, PrefetcherKind::ReadAhead);
        assert_eq!(leap.prefetcher, PrefetcherKind::Leap);
        assert_eq!(linux.data_path, DataPathKind::LinuxDefault);
        assert_eq!(leap.data_path, DataPathKind::Leap);
        assert_eq!(linux.eviction, EvictionPolicy::Lazy);
        assert_eq!(leap.eviction, EvictionPolicy::Eager);
        assert!(!linux.per_process_isolation);
        assert!(leap.per_process_isolation);
        // Shared knobs stay identical so comparisons are apples-to-apples.
        assert_eq!(linux.memory_fraction, leap.memory_fraction);
        assert_eq!(linux.history_size, leap.history_size);
    }

    #[test]
    fn labels_are_informative() {
        let label = SimConfig::builder()
            .memory_fraction(0.5)
            .build()
            .unwrap()
            .label();
        assert!(label.contains("leap"));
        assert!(label.contains("50%"));
        assert_eq!(DataPathKind::LinuxDefault.label(), "linux-default");
        assert_eq!(EvictionPolicy::Eager.label(), "eager");
    }

    #[test]
    fn disk_defaults_use_requested_backend() {
        let config = SimConfig::disk_defaults(BackendKind::Hdd);
        assert_eq!(config.backend, BackendKind::Hdd);
        assert_eq!(config.data_path, DataPathKind::LinuxDefault);
    }

    #[test]
    fn label_round_trips() {
        for kind in [DataPathKind::LinuxDefault, DataPathKind::Leap] {
            assert_eq!(DataPathKind::from_label(kind.label()), Some(kind));
        }
        for policy in [EvictionPolicy::Lazy, EvictionPolicy::Eager] {
            assert_eq!(EvictionPolicy::from_label(policy.label()), Some(policy));
        }
        assert_eq!(DataPathKind::from_label("bogus"), None);
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let config = SimConfig::builder()
            .prefetcher(PrefetcherKind::Stride)
            .data_path(DataPathKind::LinuxDefault)
            .backend(BackendKind::Ssd)
            .eviction(EvictionPolicy::Lazy)
            .memory_fraction(0.25)
            .prefetch_cache_pages(512)
            .history_size(16)
            .max_prefetch_window(4)
            .cores(12)
            .sched_quantum(Nanos::from_micros(333))
            .context_switch_cost(Nanos::from_micros(5))
            .replay_mode(ReplayMode::Threaded)
            .per_process_isolation(true)
            .async_depth(6)
            .seed(1234)
            .backend_read_latency(Nanos::from_micros(7))
            .build()
            .unwrap();
        let json = config.to_json();
        let parsed = SimConfig::from_json(&json).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn json_round_trip_of_defaults() {
        for config in [SimConfig::linux_defaults(), SimConfig::leap_defaults()] {
            let parsed = SimConfig::from_json(&config.to_json()).unwrap();
            assert_eq!(parsed, config);
        }
    }

    #[test]
    fn fault_spec_rides_the_config_json() {
        let config = SimConfig::leap_defaults()
            .to_builder()
            .fault_plan(FaultSpec::canonical_storm())
            .build()
            .unwrap();
        assert!(config.fault.is_active());
        let parsed = SimConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(parsed, config);
        assert_eq!(parsed.fault, FaultSpec::canonical_storm());
        // Old configs without fault keys still parse, defaulting to healthy.
        let healthy = SimConfig::from_json(&SimConfig::linux_defaults().to_json()).unwrap();
        assert_eq!(healthy.fault, FaultSpec::none());
    }

    #[test]
    fn recovery_policy_rides_the_config_json() {
        let config = SimConfig::leap_defaults()
            .to_builder()
            .recovery_policy(RecoveryPolicy::tail_tolerant())
            .build()
            .unwrap();
        assert!(config.recovery.is_active());
        let parsed = SimConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(parsed, config);
        assert_eq!(parsed.recovery, RecoveryPolicy::tail_tolerant());
        // Old configs without recovery keys still parse, defaulting to off.
        let quiet = SimConfig::from_json(&SimConfig::linux_defaults().to_json()).unwrap();
        assert_eq!(quiet.recovery, RecoveryPolicy::none());
    }

    #[test]
    fn invalid_recovery_policy_is_rejected_at_validation() {
        let mut bad = RecoveryPolicy::none();
        bad.max_retries = 3; // retries without a deadline can never trigger
        let err = SimConfig::leap_defaults()
            .to_builder()
            .recovery_policy(bad)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidRecoveryPolicy { .. }));
        assert!(err.to_string().contains("recovery"));
    }

    #[test]
    fn unknown_fault_keys_surface_the_typed_error_text() {
        let err = SimConfig::from_json("{\"fault_warp_drive\":1}").unwrap_err();
        let ConfigError::Parse(msg) = &err else {
            panic!("expected a parse error, got {err:?}");
        };
        assert!(msg.contains("fault_warp_drive"), "got {msg:?}");
        // A bad value on a known fault key is also a parse error, carrying
        // the key and the offending value from the typed remote-tier error.
        let err = SimConfig::from_json("{\"fault_latency_spikes\":\"lots\"}").unwrap_err();
        let ConfigError::Parse(msg) = &err else {
            panic!("expected a parse error, got {err:?}");
        };
        assert!(
            msg.contains("fault_latency_spikes") && msg.contains("lots"),
            "got {msg:?}"
        );
    }

    #[test]
    fn invalid_fault_spec_is_rejected_at_validation() {
        let mut bad = FaultSpec::canonical_storm();
        bad.horizon = bad.start;
        let err = SimConfig::leap_defaults()
            .to_builder()
            .fault_plan(bad)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidFaultSpec { .. }));
        assert!(err.to_string().contains("fault"));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            SimConfig::from_json("not json"),
            Err(ConfigError::Parse(_))
        ));
        assert!(matches!(
            SimConfig::from_json("{\"bogus_key\":1}"),
            Err(ConfigError::Parse(_))
        ));
        assert!(matches!(
            SimConfig::from_json("{\"prefetcher\":\"Quantum\"}"),
            Err(ConfigError::UnknownComponent {
                role: "prefetcher",
                ..
            })
        ));
        // Parsed configs are validated like built ones.
        assert!(matches!(
            SimConfig::from_json("{\"cores\":0}"),
            Err(ConfigError::ZeroCores)
        ));
        assert!(matches!(
            SimConfig::from_json("{\"sched_quantum_ns\":0}"),
            Err(ConfigError::ZeroQuantum)
        ));
        assert!(matches!(
            SimConfig::from_json("{\"async_depth\":0}"),
            Err(ConfigError::ZeroAsyncDepth)
        ));
    }
}
