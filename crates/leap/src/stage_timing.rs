//! Feature-gated per-stage wall-clock breakdown of the fault hot path.
//!
//! Perf work on the replay engine needs to know *where* the host time goes:
//! prefetcher (trend detection + window sizing), data path (latency
//! sampling + dispatch bookkeeping), cache (swap-cache map operations), or
//! eviction (policy bookkeeping + reclaim passes). This module accumulates
//! those four buckets behind the `stage-timing` cargo feature:
//!
//! - **Feature off (default):** [`time`] compiles to a direct call of the
//!   closure — zero instructions added to the hot path, nothing to measure,
//!   nothing to mismeasure. [`ENABLED`] is `false` and [`snapshot`] returns
//!   zeros.
//! - **Feature on:** every instrumented section is bracketed by two clock
//!   reads and added to a global per-stage atomic. On x86_64 the reads are
//!   raw TSC ticks (~2×10 ns per section), converted to nanoseconds once
//!   at snapshot time via a calibration against the OS clock; elsewhere
//!   they fall back to `Instant::now()` (~2×40 ns under virtualised
//!   clocksources). The hot path takes a dozen probes per simulated
//!   access, so an actively-probed run is *not* comparable to an unprobed
//!   one — which is why the probes can also be switched off at runtime
//!   ([`set_active`]): the perf harness times its wall-clock repeats with
//!   the probes inactive (one predictable branch per section) and runs a
//!   separate attribution repeat with them active, so the headline
//!   pages/sec and the stage breakdown come observer-free from the same
//!   binary.
//!
//! Accumulators are process-global atomics, so threaded replays sum the
//! stage time of all shard workers (a CPU-time-like total that can exceed
//! wall-clock when workers overlap). Simulated results are unaffected
//! either way: the probes read the host clock, never the simulation clock.
//!
//! Run the instrumented harness with:
//!
//! ```text
//! cargo run --release -p leap-bench --features stage-timing \
//!     --bin perf_harness -- --out BENCH_replay.json
//! ```

/// The four instrumented stages of the fault hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Access-history update, trend detection, window sizing, candidate
    /// generation (the prefetcher tracker).
    Prefetcher,
    /// Data-path traversal: latency sampling, dispatch-queue bookkeeping,
    /// backend reads/writes.
    DataPath,
    /// Swap-cache map operations: hit probes, presence probes, inserts.
    Cache,
    /// Eviction-policy bookkeeping, reclaim passes, hit reactions.
    Eviction,
}

/// Accumulated per-stage host time, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Time in [`Stage::Prefetcher`] sections.
    pub prefetcher_ns: u64,
    /// Time in [`Stage::DataPath`] sections.
    pub data_path_ns: u64,
    /// Time in [`Stage::Cache`] sections.
    pub cache_ns: u64,
    /// Time in [`Stage::Eviction`] sections.
    pub eviction_ns: u64,
}

impl StageBreakdown {
    /// Sum over all four stages.
    pub fn total_ns(&self) -> u64 {
        self.prefetcher_ns + self.data_path_ns + self.cache_ns + self.eviction_ns
    }
}

/// True when this build carries the `stage-timing` instrumentation.
pub const ENABLED: bool = cfg!(feature = "stage-timing");

#[cfg(feature = "stage-timing")]
mod imp {
    use super::{Stage, StageBreakdown};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static STAGES: [AtomicU64; 4] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];

    static ACTIVE: AtomicBool = AtomicBool::new(true);

    /// Turns the probes on or off at runtime. While inactive, [`time`]
    /// costs one predictable branch — cheap enough that a measurement
    /// harness can take its wall-clock repeats observer-free and flip the
    /// probes on for a separate attribution repeat.
    pub fn set_active(active: bool) {
        ACTIVE.store(active, Ordering::Relaxed);
    }

    /// True when the probes are currently accumulating.
    pub fn is_active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    #[inline]
    fn slot(stage: Stage) -> &'static AtomicU64 {
        &STAGES[match stage {
            Stage::Prefetcher => 0,
            Stage::DataPath => 1,
            Stage::Cache => 2,
            Stage::Eviction => 3,
        }]
    }

    // On x86_64 the probe reads the TSC directly (~10 ns per read where a
    // `clock_gettime` can cost 40+ ns under virtualised clocksources) and
    // the tick counts are converted to nanoseconds once, at snapshot time,
    // using a calibration against the OS clock. TSCs are synchronised
    // across cores on every host this runs on; the attribution-only buckets
    // tolerate the residual cross-core skew. Other architectures keep the
    // portable OS-clock probe.
    #[cfg(target_arch = "x86_64")]
    mod probe {
        use std::sync::OnceLock;
        use std::time::Instant;

        #[inline]
        pub fn now() -> u64 {
            unsafe { core::arch::x86_64::_rdtsc() }
        }

        static TICKS_PER_NS: OnceLock<f64> = OnceLock::new();

        /// Ticks per nanosecond, measured once against the OS clock over a
        /// few milliseconds (called from `snapshot`, never from the hot
        /// path).
        fn ticks_per_ns() -> f64 {
            *TICKS_PER_NS.get_or_init(|| {
                let start = Instant::now();
                let t0 = now();
                while start.elapsed().as_millis() < 5 {
                    std::hint::spin_loop();
                }
                let ticks = now().wrapping_sub(t0);
                let elapsed = start.elapsed().as_nanos() as f64;
                (ticks as f64 / elapsed).max(f64::MIN_POSITIVE)
            })
        }

        pub fn to_ns(ticks: u64) -> u64 {
            (ticks as f64 / ticks_per_ns()) as u64
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    mod probe {
        use std::sync::OnceLock;
        use std::time::Instant;

        static EPOCH: OnceLock<Instant> = OnceLock::new();

        #[inline]
        pub fn now() -> u64 {
            EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
        }

        pub fn to_ns(ticks: u64) -> u64 {
            ticks
        }
    }

    /// Runs `f`, attributing its host time to `stage` (a plain call while
    /// the probes are [inactive](set_active)).
    #[inline]
    pub fn time<R>(stage: Stage, f: impl FnOnce() -> R) -> R {
        if !ACTIVE.load(Ordering::Relaxed) {
            return f();
        }
        let start = probe::now();
        let result = f();
        slot(stage).fetch_add(probe::now().wrapping_sub(start), Ordering::Relaxed);
        result
    }

    /// Zeroes all stage accumulators.
    pub fn reset() {
        for stage in &STAGES {
            stage.store(0, Ordering::Relaxed);
        }
    }

    /// Reads the accumulated per-stage breakdown.
    pub fn snapshot() -> StageBreakdown {
        StageBreakdown {
            prefetcher_ns: probe::to_ns(STAGES[0].load(Ordering::Relaxed)),
            data_path_ns: probe::to_ns(STAGES[1].load(Ordering::Relaxed)),
            cache_ns: probe::to_ns(STAGES[2].load(Ordering::Relaxed)),
            eviction_ns: probe::to_ns(STAGES[3].load(Ordering::Relaxed)),
        }
    }
}

#[cfg(not(feature = "stage-timing"))]
mod imp {
    use super::{Stage, StageBreakdown};

    /// Runs `f` directly (instrumentation compiled out).
    #[inline(always)]
    pub fn time<R>(_stage: Stage, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// No-op (instrumentation compiled out).
    #[inline(always)]
    pub fn set_active(_active: bool) {}

    /// Always false (instrumentation compiled out).
    #[inline(always)]
    pub fn is_active() -> bool {
        false
    }

    /// No-op (instrumentation compiled out).
    #[inline(always)]
    pub fn reset() {}

    /// All zeros (instrumentation compiled out).
    #[inline(always)]
    pub fn snapshot() -> StageBreakdown {
        StageBreakdown::default()
    }
}

/// Runs `f`, attributing its host time to `stage` (a plain call when the
/// `stage-timing` feature is off).
pub use imp::time;

/// Zeroes all stage accumulators (no-op when the feature is off).
pub use imp::reset;

/// Turns the probes on or off at runtime (no-op when the feature is off).
pub use imp::set_active;

/// True when the probes are currently accumulating (always false when the
/// feature is off).
pub use imp::is_active;

/// Reads the accumulated per-stage breakdown (zeros when the feature is
/// off).
pub use imp::snapshot;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_passes_the_closure_result_through() {
        assert_eq!(time(Stage::Cache, || 41 + 1), 42);
    }

    #[test]
    fn snapshot_matches_feature_state() {
        reset();
        let before = snapshot();
        assert_eq!(before, StageBreakdown::default());
        time(Stage::DataPath, || std::hint::black_box(0u64));
        let after = snapshot();
        if ENABLED {
            // Nothing else runs between reset and snapshot in this test
            // binary section, but another test thread may also accumulate;
            // the only portable claim is monotonicity.
            assert!(after.total_ns() >= before.total_ns());
        } else {
            assert_eq!(after, StageBreakdown::default());
        }
    }

    #[test]
    fn breakdown_total_sums_stages() {
        let b = StageBreakdown {
            prefetcher_ns: 1,
            data_path_ns: 2,
            cache_ns: 3,
            eviction_ns: 4,
        };
        assert_eq!(b.total_ns(), 10);
    }
}
