//! The deterministic async request/completion pipeline.
//!
//! Leap's design charges remote I/O asynchronously: eager eviction and async
//! write-backs overlap the data path with compute (§5.4). Historically the
//! engine modelled that overlap as *free* — prefetch reads and write-backs
//! were issued over the data path (so dispatch queues and the backend saw
//! the traffic) but their latency was never charged anywhere. This module
//! makes the overlap a first-class, *bounded* resource:
//!
//! - Every asynchronous remote I/O (a prefetch read, a write-back) is
//!   **submitted** to an [`AsyncPipeline`] with its service time. The
//!   pipeline tracks the request's completion instant on the submitting
//!   shard's virtual timeline.
//! - The pipeline enforces a bounded **in-flight budget**
//!   ([`SimConfig::async_depth`](crate::SimConfig::async_depth)): a submit
//!   that would leave more than `depth − 1` requests outstanding *stalls*
//!   the submitter — virtual time advances to the earliest completions until
//!   the budget holds again, and that stall is charged to the faulting
//!   access (the paging service has run out of asynchrony).
//! - Completions are reaped deterministically in completion-time order (a
//!   virtual-time reactor): lazily as the shard's clock catches up, eagerly
//!   while stalling, and finally when the run ends. Reaped completions feed
//!   the [`PipelineStats`] counters and an order-sensitive checksum, so two
//!   replays are comparable event-for-event without storing the stream.
//!
//! Each per-core shard worker owns one pipeline (its submission queue), so
//! the scheme is share-nothing and bit-reproducible across
//! [`ReplayMode`](crate::ReplayMode)s: the serial reference and the
//! thread-parallel replay step literally the same pipeline state.
//!
//! The two interesting depth settings:
//!
//! - `usize::MAX` (the default) never stalls — exactly the legacy free
//!   -overlap accounting, bit-for-bit.
//! - `1` allows no asynchrony at all: every submit waits for its own
//!   completion, i.e. the I/O is billed synchronously (the property tests
//!   pin this degeneration against an independent serial reference).

use leap_sim_core::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The kind of asynchronous remote I/O a pipeline request models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// A prefetch read admitting a page into the swap cache.
    PrefetchRead,
    /// A swap-out write-back to the remote tier.
    WriteBack,
}

/// What one [`AsyncPipeline::submit`] call charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Time the submitter stalled waiting for the in-flight budget (zero
    /// while the pipeline has asynchrony to spare).
    pub stall: Nanos,
    /// The submitted request's completion instant on the shard's timeline.
    pub completes_at: Nanos,
}

/// Deterministic counters describing one pipeline's lifetime, comparable
/// bit-for-bit across replay modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Prefetch reads submitted.
    pub prefetch_reads: u64,
    /// Write-backs submitted.
    pub write_backs: u64,
    /// Completions reaped so far (equals submissions once the run drains).
    pub completed: u64,
    /// Total submitter stall charged by the in-flight budget.
    pub total_stall: Nanos,
    /// Order-sensitive FNV-style checksum over reaped completion instants —
    /// a fingerprint of the completion event stream (two equal checksums
    /// with equal counts mean the reactors saw the same completions in the
    /// same order).
    pub completion_checksum: u64,
}

const CHECKSUM_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const CHECKSUM_PRIME: u64 = 0x0000_0100_0000_01b3;

impl PipelineStats {
    /// Total requests submitted.
    pub fn submitted(&self) -> u64 {
        self.prefetch_reads + self.write_backs
    }

    /// Folds another pipeline's stats into this one (per-core shard
    /// pipelines merging into the run aggregate). Checksums combine
    /// commutatively so the merge is independent of fold order *given* the
    /// per-shard values; callers still fold shards in ascending core order
    /// like every other aggregate.
    pub fn merge(&mut self, other: &PipelineStats) {
        self.prefetch_reads += other.prefetch_reads;
        self.write_backs += other.write_backs;
        self.completed += other.completed;
        self.total_stall = self.total_stall.saturating_add(other.total_stall);
        self.completion_checksum = self
            .completion_checksum
            .wrapping_add(other.completion_checksum);
    }
}

/// One shard's submission queue and virtual-time completion reactor.
///
/// See the [module docs](self) for the model. The pipeline is deliberately
/// tiny: a min-heap of in-flight completion instants plus counters — no
/// allocation past the heap, no wall-clock, no randomness.
#[derive(Debug)]
pub struct AsyncPipeline {
    depth: usize,
    in_flight: BinaryHeap<Reverse<Nanos>>,
    stats: PipelineStats,
}

impl AsyncPipeline {
    /// Creates a pipeline with the given in-flight budget.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (validated away by
    /// [`crate::SimConfigBuilder::build`]).
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "async depth must be nonzero");
        AsyncPipeline {
            depth,
            in_flight: BinaryHeap::new(),
            stats: PipelineStats {
                completion_checksum: CHECKSUM_SEED,
                ..PipelineStats::default()
            },
        }
    }

    /// The configured in-flight budget.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Submits one asynchronous I/O of `service` duration at shard time
    /// `now`, enforcing the in-flight budget.
    ///
    /// Completions that the shard's clock has already passed are reaped
    /// first (they cost nothing). The new request then occupies a slot; if
    /// more than `depth − 1` requests remain outstanding, the submitter
    /// stalls — reaping the earliest completions and advancing virtual time
    /// to them — until the budget holds. With depth 1 that means waiting for
    /// *this* request's own completion: fully synchronous billing.
    pub fn submit(&mut self, now: Nanos, service: Nanos, kind: IoKind) -> SubmitOutcome {
        self.retire(now);
        match kind {
            IoKind::PrefetchRead => self.stats.prefetch_reads += 1,
            IoKind::WriteBack => self.stats.write_backs += 1,
        }
        let completes_at = now.saturating_add(service);
        self.in_flight.push(Reverse(completes_at));
        let budget = self.depth - 1;
        let mut virtual_now = now;
        while self.in_flight.len() > budget {
            let Reverse(t) = self.in_flight.pop().expect("len checked above");
            self.note_completion(t);
            virtual_now = virtual_now.max(t);
        }
        let stall = virtual_now.saturating_sub(now);
        self.stats.total_stall = self.stats.total_stall.saturating_add(stall);
        SubmitOutcome {
            stall,
            completes_at,
        }
    }

    /// Reaps every in-flight request whose completion instant is at or
    /// before `now` — the lazy half of the virtual-time reactor, called as
    /// the shard's clock advances past completions.
    pub fn retire(&mut self, now: Nanos) {
        while let Some(&Reverse(t)) = self.in_flight.peek() {
            if t > now {
                break;
            }
            self.in_flight.pop();
            self.note_completion(t);
        }
    }

    /// Drains every outstanding request (end of run): completions are
    /// reaped in completion-time order regardless of the final clock.
    pub fn drain(&mut self) {
        while let Some(Reverse(t)) = self.in_flight.pop() {
            self.note_completion(t);
        }
    }

    /// The pipeline's deterministic counters.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    fn note_completion(&mut self, at: Nanos) {
        self.stats.completed += 1;
        self.stats.completion_checksum = self
            .stats
            .completion_checksum
            .wrapping_mul(CHECKSUM_PRIME)
            .wrapping_add(at.as_nanos() ^ self.stats.completed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unbounded_depth_never_stalls() {
        let mut p = AsyncPipeline::new(usize::MAX);
        let mut now = Nanos::ZERO;
        for i in 0..100u64 {
            let out = p.submit(now, Nanos(1_000 + i), IoKind::PrefetchRead);
            assert_eq!(out.stall, Nanos::ZERO);
            now = now.saturating_add(Nanos(10));
        }
        assert_eq!(p.stats().total_stall, Nanos::ZERO);
        assert_eq!(p.stats().prefetch_reads, 100);
    }

    #[test]
    fn depth_one_bills_every_request_synchronously() {
        let mut p = AsyncPipeline::new(1);
        let out = p.submit(Nanos(100), Nanos(500), IoKind::WriteBack);
        assert_eq!(out.stall, Nanos(500));
        assert_eq!(out.completes_at, Nanos(600));
        assert_eq!(p.in_flight(), 0);
        let out = p.submit(Nanos(700), Nanos(300), IoKind::WriteBack);
        assert_eq!(out.stall, Nanos(300));
        assert_eq!(p.stats().total_stall, Nanos(800));
        assert_eq!(p.stats().completed, 2);
    }

    #[test]
    fn depth_two_overlaps_one_request() {
        let mut p = AsyncPipeline::new(2);
        // First request rides for free...
        assert_eq!(
            p.submit(Nanos(0), Nanos(1_000), IoKind::PrefetchRead).stall,
            Nanos::ZERO
        );
        // ...the second stalls until the first completes (budget is one
        // outstanding request after submit).
        let out = p.submit(Nanos(200), Nanos(1_000), IoKind::PrefetchRead);
        assert_eq!(out.stall, Nanos(800));
        // A submit after the earlier completions cost nothing again.
        let out = p.submit(Nanos(2_500), Nanos(100), IoKind::PrefetchRead);
        assert_eq!(out.stall, Nanos::ZERO);
    }

    #[test]
    fn retire_reaps_passed_completions_without_stall() {
        let mut p = AsyncPipeline::new(usize::MAX);
        p.submit(Nanos(0), Nanos(100), IoKind::PrefetchRead);
        p.submit(Nanos(0), Nanos(200), IoKind::WriteBack);
        p.retire(Nanos(150));
        assert_eq!(p.stats().completed, 1);
        assert_eq!(p.in_flight(), 1);
        p.drain();
        assert_eq!(p.stats().completed, 2);
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn merge_accumulates_and_is_deterministic() {
        let run = |salt: u64| {
            let mut p = AsyncPipeline::new(4);
            for i in 0..10 {
                p.submit(Nanos(i * 50), Nanos(300 + salt), IoKind::PrefetchRead);
            }
            p.drain();
            *p.stats()
        };
        let (a, b) = (run(1), run(2));
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.submitted(), 20);
        assert_eq!(merged.completed, 20);
        // Equal inputs fingerprint equally; different ones do not.
        assert_eq!(run(1), a);
        assert_ne!(a.completion_checksum, b.completion_checksum);
    }

    proptest! {
        /// In-flight budget 1 degenerates to fully synchronous billing: the
        /// pipeline's completion instants and stalls match an independently
        /// computed serial reference (each request starts no earlier than
        /// its submit instant and the previous completion, and the
        /// submitter always waits out its own service time from there).
        #[test]
        fn prop_depth_one_matches_serial_synchronous_reference(
            requests in proptest::collection::vec((0u64..10_000, 1u64..100_000), 1..64),
        ) {
            let mut p = AsyncPipeline::new(1);
            let mut now = 0u64;
            let mut serial_clock = 0u64; // reference: completion of the previous request
            let mut total_stall = 0u64;
            for &(gap, service) in &requests {
                now += gap;
                let out = p.submit(Nanos(now), Nanos(service), IoKind::PrefetchRead);
                // The request completes at its own submit + service...
                prop_assert_eq!(out.completes_at, Nanos(now + service));
                // ...and the submitter waited for exactly that completion.
                prop_assert_eq!(out.stall, Nanos(service));
                serial_clock = serial_clock.max(now) + service;
                total_stall += service;
                // Nothing is ever left in flight at depth 1.
                prop_assert_eq!(p.in_flight(), 0);
            }
            prop_assert_eq!(p.stats().total_stall, Nanos(total_stall));
            prop_assert_eq!(p.stats().completed, requests.len() as u64);
            // The reference serial clock is reachable from the pipeline's
            // view: the last completion instant never exceeds it.
            prop_assert!(now <= serial_clock);
        }

        /// The unbounded default is exactly the legacy free-overlap
        /// accounting: no submit ever stalls, whatever the workload.
        #[test]
        fn prop_unbounded_depth_is_free_overlap(
            requests in proptest::collection::vec((0u64..10_000, 1u64..100_000), 1..64),
        ) {
            let mut p = AsyncPipeline::new(usize::MAX);
            let mut now = 0u64;
            for &(gap, service) in &requests {
                now += gap;
                let out = p.submit(Nanos(now), Nanos(service), IoKind::WriteBack);
                prop_assert_eq!(out.stall, Nanos::ZERO);
            }
            prop_assert_eq!(p.stats().total_stall, Nanos::ZERO);
        }

        /// Stalls charged at any depth are exactly the time the virtual
        /// reactor had to advance: replaying the same submit sequence twice
        /// is bit-identical (the pipeline is deterministic state).
        #[test]
        fn prop_pipeline_is_deterministic(
            requests in proptest::collection::vec((0u64..5_000, 1u64..50_000), 1..48),
            depth in 1usize..6,
        ) {
            let run = || {
                let mut p = AsyncPipeline::new(depth);
                let mut now = 0u64;
                let mut outs = Vec::new();
                for &(gap, service) in &requests {
                    now += gap;
                    outs.push(p.submit(Nanos(now), Nanos(service), IoKind::PrefetchRead));
                }
                p.drain();
                (outs, *p.stats())
            };
            prop_assert_eq!(run(), run());
        }
    }
}
