//! [`TraceRecorder`]: export a simulated run as a canonical fault log.
//!
//! The inverse of `leap_workloads::ingest`: attach a [`TraceRecorder`] to a
//! [`Session`](crate::Session) and the full access stream comes back out as
//! a perf-script-style page-fault log —
//!
//! ```text
//! # t0: 0.000000000
//! <comm> <pid> [<core>] <secs>.<nanos9>: page-faults: addr=0x<hex> <R|W>
//! ```
//!
//! Timestamps are **application-time** clocks: each pid's clock is its
//! cumulative compute (think) time, not the simulated wall clock. That
//! makes the export the exact inverse of ingestion's
//! timestamp-to-compute-cost rule — re-ingesting a recorded run reproduces
//! the replayed traces bit-identically (pages, read/write flags, compute
//! costs, and, with matching comms, names). The round-trip invariant is
//! pinned by `tests/ingest_roundtrip.rs` and the golden fixture under
//! `tests/fixtures/`.
//!
//! Lines are emitted stably sorted by timestamp, so the log is globally
//! time-ordered (what ingestion requires) while every pid's internal order
//! is preserved — exactly the shape a merged multi-process fault recording
//! has.
//!
//! # Examples
//!
//! ```
//! use leap::prelude::*;
//! use leap_sim_core::units::MIB;
//! use leap_workloads::ingest::{ingest_str, LogFormat};
//!
//! let trace = leap_workloads::stride_trace(2 * MIB, 10, 1);
//! let sim = SimConfig::builder().seed(7).build_vmm().unwrap();
//! let mut recorder = TraceRecorder::for_traces(std::slice::from_ref(&trace));
//! let result = sim.session().observe(&mut recorder).run(&trace);
//! assert_eq!(recorder.events(), result.total_accesses);
//!
//! // The export round-trips: ingesting it reproduces the replayed trace.
//! let log = recorder.to_log();
//! let reingested = ingest_str(&log, LogFormat::PerfScript).unwrap();
//! assert_eq!(reingested.traces(), std::slice::from_ref(&trace));
//! ```

use crate::result::RunResult;
use crate::session::{FaultEvent, Observer};
use leap_sim_core::units::PAGE_SHIFT;
use leap_sim_core::Nanos;
use leap_workloads::AccessTrace;
use std::io::Write;
use std::path::Path;

/// One recorded access, pending export.
#[derive(Debug, Clone, Copy)]
struct RecordedFault {
    /// The pid's application-time clock after this access's compute.
    at: Nanos,
    pid: u32,
    core: usize,
    page: u64,
    is_write: bool,
}

/// An [`Observer`] that records the access stream and exports it in the
/// canonical perf-script fault-log format (see the module docs for the
/// grammar and the round-trip invariant).
#[derive(Debug, Default)]
pub struct TraceRecorder {
    /// comm for `Pid(i + 1)` at index `i`; pids beyond the list fall back
    /// to `pid<N>`.
    comms: Vec<String>,
    /// Per-pid cumulative compute clocks, keyed linearly (few pids).
    clocks: Vec<(u32, Nanos)>,
    faults: Vec<RecordedFault>,
}

impl TraceRecorder {
    /// A recorder whose processes are named `pid1`, `pid2`, ... (the same
    /// names DAMON-format ingestion assigns).
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// A recorder naming `Pid(i + 1)` after `comms[i]`. Comms are
    /// whitespace-sanitized ('-' replaces inner whitespace; empty becomes
    /// `sim`), since a comm is one token of the log grammar.
    pub fn with_comms<I, S>(comms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        TraceRecorder {
            comms: comms
                .into_iter()
                .map(|c| sanitize_comm(c.as_ref()))
                .collect(),
            ..TraceRecorder::default()
        }
    }

    /// A recorder naming processes after the traces of the run it is about
    /// to observe (process `i` of a `run`/`run_multi` replay is
    /// `Pid(i + 1)`).
    pub fn for_traces(traces: &[AccessTrace]) -> Self {
        TraceRecorder::with_comms(traces.iter().map(|t| t.name()))
    }

    /// Number of accesses recorded so far.
    pub fn events(&self) -> u64 {
        self.faults.len() as u64
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Renders the recorded run as a canonical fault log: the `# t0: 0`
    /// base header, then one line per access, stably sorted by timestamp.
    pub fn to_log(&self) -> String {
        use std::fmt::Write as _;
        let mut ordered: Vec<&RecordedFault> = self.faults.iter().collect();
        ordered.sort_by_key(|f| f.at); // stable: per-pid order survives ties
        let mut out = String::with_capacity(64 * (ordered.len() + 1));
        out.push_str("# t0: 0.000000000\n");
        for fault in ordered {
            // Comm without a per-line allocation: borrow the configured
            // name, or render the `pid<N>` fallback straight into `out`.
            match self.comms.get(fault.pid.wrapping_sub(1) as usize) {
                Some(comm) => out.push_str(comm),
                None => {
                    let _ = write!(out, "pid{}", fault.pid);
                }
            }
            let t = fault.at.as_nanos();
            let _ = writeln!(
                out,
                " {} [{:03}] {}.{:09}: page-faults: addr=0x{:x} {}",
                fault.pid,
                fault.core,
                t / 1_000_000_000,
                t % 1_000_000_000,
                fault.page << PAGE_SHIFT,
                if fault.is_write { 'W' } else { 'R' },
            );
        }
        out
    }

    /// Writes the rendered log to `writer`.
    pub fn write_to<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writer.write_all(self.to_log().as_bytes())
    }

    /// Writes the rendered log to a file at `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_log())
    }
}

/// A comm must be a single non-whitespace token of the log grammar.
fn sanitize_comm(comm: &str) -> String {
    let cleaned: String = comm
        .chars()
        .map(|c| if c.is_whitespace() { '-' } else { c })
        .collect();
    if cleaned.is_empty() {
        "sim".to_string()
    } else {
        cleaned
    }
}

impl Observer for TraceRecorder {
    fn on_event(&mut self, event: &FaultEvent) {
        let idx = match self.clocks.iter().position(|(pid, _)| *pid == event.pid.0) {
            Some(idx) => idx,
            None => {
                self.clocks.push((event.pid.0, Nanos::ZERO));
                self.clocks.len() - 1
            }
        };
        let clock = &mut self.clocks[idx].1;
        *clock = clock.saturating_add(event.compute);
        self.faults.push(RecordedFault {
            at: *clock,
            pid: event.pid.0,
            core: event.core,
            page: event.page,
            is_write: event.is_write,
        });
    }

    fn on_complete(&mut self, _result: &RunResult) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::session::Simulator;
    use crate::vmm::VmmSimulator;
    use leap_sim_core::units::MIB;
    use leap_workloads::ingest::{ingest_str, LogFormat};
    use leap_workloads::{sequential_trace, stride_trace, Access};

    #[test]
    fn records_every_access_of_a_run() {
        let trace = sequential_trace(MIB, 1);
        let sim = VmmSimulator::new(SimConfig::leap_defaults());
        let mut recorder = TraceRecorder::for_traces(std::slice::from_ref(&trace));
        let result = sim.session().observe(&mut recorder).run(&trace);
        assert_eq!(recorder.events(), result.total_accesses);
        assert!(!recorder.is_empty());
    }

    #[test]
    fn export_round_trips_through_ingest_for_multi_process_runs() {
        let traces = vec![stride_trace(MIB, 10, 1), sequential_trace(MIB, 1)];
        let config = SimConfig::builder()
            .cores(2)
            .seed(11)
            .build()
            .expect("valid config");
        let mut recorder = TraceRecorder::for_traces(&traces);
        VmmSimulator::new(config)
            .session()
            .observe(&mut recorder)
            .run_multi(&traces);
        let log = recorder.to_log();
        let reingested = ingest_str(&log, LogFormat::PerfScript).expect("recorded log ingests");
        assert_eq!(reingested.traces(), &traces[..]);
    }

    #[test]
    fn log_is_globally_time_ordered_with_per_pid_order_preserved() {
        let traces = vec![stride_trace(MIB, 7, 1), sequential_trace(MIB, 1)];
        let config = SimConfig::builder()
            .cores(2)
            .seed(3)
            .build()
            .expect("valid config");
        let mut recorder = TraceRecorder::for_traces(&traces);
        VmmSimulator::new(config)
            .session()
            .observe(&mut recorder)
            .run_multi(&traces);
        let log = recorder.to_log();
        let mut last = 0u64;
        for line in log.lines().filter(|l| !l.starts_with('#')) {
            let time_tok = line.split_whitespace().nth(3).expect("time token");
            let digits: String = time_tok
                .trim_end_matches(':')
                .chars()
                .filter(|c| c.is_ascii_digit())
                .collect();
            let t: u64 = digits.parse().expect("numeric time");
            assert!(t >= last, "log went backwards: {line}");
            last = t;
        }
    }

    #[test]
    fn comms_are_sanitized_into_single_tokens() {
        assert_eq!(sanitize_comm("power graph"), "power-graph");
        assert_eq!(sanitize_comm(""), "sim");
        assert_eq!(sanitize_comm("ok"), "ok");
        let trace = AccessTrace::new("two words", vec![Access::read(0, Nanos::ZERO)]);
        let mut recorder = TraceRecorder::for_traces(std::slice::from_ref(&trace));
        let sim = VmmSimulator::new(SimConfig::leap_defaults());
        sim.session().observe(&mut recorder).run(&trace);
        assert!(recorder.to_log().contains("two-words 1 "));
    }

    #[test]
    fn unnamed_pids_fall_back_to_damon_style_names() {
        let trace = AccessTrace::new("t", vec![Access::read(0, Nanos::ZERO)]);
        let mut recorder = TraceRecorder::new();
        let sim = VmmSimulator::new(SimConfig::leap_defaults());
        sim.session().observe(&mut recorder).run(&trace);
        assert!(recorder.to_log().contains("pid1 1 "));
    }
}
