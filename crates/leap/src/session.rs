//! The unified [`Simulator`] trait and the stepwise [`Session`] API.
//!
//! Historically `VmmSimulator` and `VfsSimulator` were two unrelated structs
//! exposing only batch `run(trace) -> RunResult`. This module puts both
//! behind one trait and adds a streaming mode: a [`Session`] drives a
//! simulator access by access and hands every resulting [`FaultEvent`] to
//! [`Observer`] hooks *while the run executes*. The batch result is
//! unchanged — `Session::run` and `Simulator::run` replay the exact same
//! step sequence — so figures can be computed from the stream with
//! numerically identical output (see `leap-bench`'s Figure 2/7 percentile
//! rows).
//!
//! Multi-process replays ([`Simulator::run_multi`]) are driven by the
//! time-sliced per-core scheduler in [`crate::sched`]: every [`FaultEvent`]
//! carries the core it ran on, so per-core streams (and Figure 13-style
//! scale-up curves) fall out of the same observer machinery — see
//! [`CoreActivity`] and [`EventLog`].

use crate::config::SimConfig;
use crate::result::RunResult;
use crate::sched;
use leap_mem::{CacheOrigin, Pid};
use leap_metrics::LatencyHistogram;
use leap_sim_core::Nanos;
use leap_workloads::multi::InterleavedStep;
use leap_workloads::{Access, AccessTrace};

/// How one access was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The page was resident and mapped: a local DRAM reference.
    LocalHit,
    /// First touch: a demand-zero minor fault.
    MinorFault,
    /// A remote page access served from the swap/prefetch cache.
    CacheHit {
        /// How the entry got into the cache (prefetched vs demand-cached).
        origin: CacheOrigin,
    },
    /// A remote page access that traversed the data path to the backend.
    RemoteFetch,
    /// A buffered file write absorbed by the VFS cache (VFS front-end only).
    BufferedWrite,
}

impl AccessOutcome {
    /// True for the outcomes the paper counts as *remote page accesses*
    /// (everything that went to the remote-access machinery rather than
    /// plain resident memory).
    pub fn is_remote(self) -> bool {
        !matches!(self, AccessOutcome::LocalHit | AccessOutcome::MinorFault)
    }
}

/// One access's journey through the fault engine, as emitted to observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 0-based index of the access in replay order. Dense per replay for
    /// single-process runs. In sharded multi-process replays (the VMM with
    /// per-process isolation) the index is **per core** — dense within each
    /// core's stream — and the merged stream is ordered by `(core, seq)`.
    /// Replays on the monolithic fallback path (the VFS; the VMM with
    /// `per_process_isolation = false`) keep one global counter across
    /// cores, so per-core streams there have gaps.
    pub seq: u64,
    /// The accessing process.
    pub pid: Pid,
    /// The CPU core the access ran on. Scheduled multi-process replays
    /// ([`Simulator::run_multi`]) report the scheduler's core placement;
    /// single-process and interleaved replays attribute everything to
    /// core 0.
    pub core: usize,
    /// The virtual page (VMM) or file page (VFS) touched.
    pub page: u64,
    /// Whether the access was a write.
    pub is_write: bool,
    /// The access's compute (application think) time — copied from
    /// [`leap_workloads::Access::compute`] so stream consumers like
    /// [`crate::TraceRecorder`] can reconstruct application-time clocks
    /// without the replayed trace at hand.
    pub compute: Nanos,
    /// How the access was served.
    pub outcome: AccessOutcome,
    /// Latency charged to the access (what the latency histograms record).
    pub latency: Nanos,
    /// Simulated time when the access completed. In scheduled multi-core
    /// replays this is the *core-local* time, so it is monotonic per core
    /// but not across the whole event stream.
    pub completed_at: Nanos,
    /// Prefetch candidates issued on the back of this access.
    pub prefetches_issued: u32,
}

/// A hook receiving the event stream of a [`Session`] run.
///
/// Events are delivered in batches through an [`EventRing`]: the driving
/// loop buffers events and flushes a full slice at a time, so one virtual
/// call amortises over many events. Implement [`Observer::on_batch`] to
/// consume whole slices zero-copy; the default forwards each event to
/// [`Observer::on_event`], so per-event observers keep working unchanged.
pub trait Observer {
    /// Called for every access, in replay order.
    fn on_event(&mut self, event: &FaultEvent);

    /// Called with each flushed batch of events, in replay order. Exactly
    /// the concatenation of all batches equals the full event stream; every
    /// event is delivered exactly once.
    fn on_batch(&mut self, events: &[FaultEvent]) {
        for event in events {
            self.on_event(event);
        }
    }

    /// Called once with the finished result.
    fn on_complete(&mut self, _result: &RunResult) {}
}

/// A bounded buffer batching [`FaultEvent`] delivery to [`Observer`]s.
///
/// The driving loops push events into the ring; once
/// [`EventRing::DEFAULT_BATCH`] events accumulate (or the run finishes) the
/// buffered slice is handed to every observer's [`Observer::on_batch`] in
/// one call. With no observers attached, pushes are dropped without
/// buffering, so unobserved runs pay nothing.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<FaultEvent>,
    capacity: usize,
    delivered: u64,
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::new(EventRing::DEFAULT_BATCH)
    }
}

impl EventRing {
    /// Default batch size: large enough to amortise observer dispatch, small
    /// enough to stay in cache.
    pub const DEFAULT_BATCH: usize = 256;

    /// Creates a ring flushing every `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be nonzero");
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            delivered: 0,
        }
    }

    /// Buffers one event, flushing to `observers` when the batch is full.
    /// With no observers the event is dropped immediately.
    pub fn push(&mut self, event: FaultEvent, observers: &mut [&mut dyn Observer]) {
        if observers.is_empty() {
            return;
        }
        self.buf.push(event);
        if self.buf.len() >= self.capacity {
            self.flush(observers);
        }
    }

    /// Delivers any buffered events to every observer and clears the buffer.
    pub fn flush(&mut self, observers: &mut [&mut dyn Observer]) {
        if self.buf.is_empty() {
            return;
        }
        for observer in observers.iter_mut() {
            observer.on_batch(&self.buf);
        }
        self.delivered += self.buf.len() as u64;
        self.buf.clear();
    }

    /// Events delivered (flushed) so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Events currently buffered, awaiting the next flush.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// A paging/file front-end that replays access traces.
///
/// The required methods are the stepwise core ([`Simulator::prepare`], then
/// [`Simulator::step_access`] per access, then [`Simulator::into_result`]);
/// the batch entry points [`Simulator::run`], [`Simulator::run_multi`] and
/// [`Simulator::run_interleaved`] are provided on top of them, as is the
/// observable [`Session`] wrapper.
pub trait Simulator: Sized {
    /// The configuration this simulator was built with.
    fn config(&self) -> &SimConfig;

    /// The run label used in reports (component names + memory fraction).
    fn label(&self) -> &str;

    /// Sizes per-process state for the given traces (process `i` in
    /// `traces` becomes `Pid(i + 1)`) and stamps the result metadata.
    fn prepare(&mut self, traces: &[AccessTrace]);

    /// Like [`Simulator::prepare`], but for a scheduled multi-core replay:
    /// front-ends that shard state per core do so here. The default just
    /// delegates to `prepare`.
    fn prepare_multi(&mut self, traces: &[AccessTrace]) {
        self.prepare(traces);
    }

    /// Replays the working set once without recording metrics (the paper's
    /// allocate-and-initialise phase). Front-ends without that notion keep
    /// the default no-op.
    fn prepopulate(&mut self, _pid: Pid, _trace: &AccessTrace) {}

    /// Executes one access for `pid`, charging its latency, and describes it.
    fn step_access(&mut self, pid: Pid, access: Access) -> FaultEvent;

    /// The current simulated instant (the active core's local clock).
    fn now(&self) -> Nanos;

    /// Moves the simulator onto `core` at that core's local time `now`.
    /// Called by the scheduler before every access of a scheduled replay;
    /// front-ends without per-core state keep the default no-op.
    fn switch_core(&mut self, _core: usize, _now: Nanos) {}

    /// Pins the finished replay's completion time to `completion` (the
    /// latest core's local clock), so the result reports the parallel
    /// makespan. Front-ends without per-core clocks keep the default no-op.
    fn finish_multi(&mut self, _completion: Nanos) {}

    /// Finishes the run and returns the accumulated result.
    fn into_result(self) -> RunResult;

    /// Replays a single-process trace to completion.
    fn run(mut self, trace: &AccessTrace) -> RunResult {
        self.prepare(std::slice::from_ref(trace));
        for access in trace.iter() {
            self.step_access(Pid(1), *access);
        }
        self.into_result()
    }

    /// Replays `traces` as N concurrent processes time-shared over
    /// [`SimConfig::cores`] cores by the deterministic scheduler in
    /// [`crate::sched`]: per-core run queues, one
    /// [`SimConfig::sched_quantum`] time slice per turn, per-core sharded
    /// swap/cache state in front-ends that support it (the VMM). Process `i`
    /// in `traces` becomes `Pid(i + 1)`.
    ///
    /// The reported completion time is the *makespan* — the local time of
    /// the latest core — so throughput scales with cores the way the
    /// paper's Figure 13 setup does. Equal seeds (and quantum) reproduce
    /// the schedule, the per-core [`FaultEvent`] streams, and every
    /// aggregate statistic exactly.
    fn run_multi(self, traces: &[AccessTrace]) -> RunResult {
        self.run_multi_observed(traces, &mut [])
    }

    /// Like [`Simulator::run_multi`], additionally delivering every
    /// [`FaultEvent`] to `observers` in batches through an [`EventRing`]
    /// (this is what [`Session::run_multi`] calls; `on_complete` is the
    /// session's job).
    ///
    /// The default implementation replays serially on the calling thread
    /// whatever [`SimConfig::replay_mode`] says — it is what front-ends
    /// without per-core shard state (the VFS) use. The VMM front-end
    /// overrides it with the shard-worker machinery in [`crate::parallel`],
    /// honouring the configured mode.
    ///
    /// [`SimConfig::replay_mode`]: crate::SimConfig::replay_mode
    fn run_multi_observed(
        self,
        traces: &[AccessTrace],
        observers: &mut [&mut dyn Observer],
    ) -> RunResult {
        run_multi_monolithic(self, traces, observers)
    }

    /// Replays a pre-merged multi-process schedule (as produced by
    /// [`leap_workloads::interleave`]) on one serial timeline — the
    /// trace-granularity interleaving [`Simulator::run_multi`] used before
    /// the time-sliced scheduler existed. Kept for experiments that need an
    /// explicit, externally-chosen access order.
    fn run_interleaved(
        mut self,
        traces: &[AccessTrace],
        schedule: &[InterleavedStep],
    ) -> RunResult {
        self.prepare(traces);
        for step in schedule {
            self.step_access(Pid(step.process as u32 + 1), step.access);
        }
        self.into_result()
    }

    /// Wraps this simulator in an observable [`Session`].
    fn session<'obs>(self) -> Session<'obs, Self> {
        Session::new(self)
    }
}

/// The monolithic scheduled replay: one engine stepped by the global
/// time-sliced scheduler on the calling thread, events batched through an
/// [`EventRing`]. This is the default [`Simulator::run_multi_observed`] and
/// the fallback for configurations whose state genuinely cannot be sharded
/// per core (the VFS's single file cache; the VMM under
/// `per_process_isolation = false`, where all processes share one
/// prefetcher stream by definition).
pub(crate) fn run_multi_monolithic<S: Simulator>(
    mut sim: S,
    traces: &[AccessTrace],
    observers: &mut [&mut dyn Observer],
) -> RunResult {
    sim.prepare_multi(traces);
    let lens: Vec<usize> = traces.iter().map(|t| t.len()).collect();
    let config = sim.config();
    let (cores, quantum, seed, switch_cost) = (
        config.cores,
        config.sched_quantum,
        config.seed,
        config.context_switch_cost,
    );
    let mut ring = EventRing::default();
    let completion = sched::drive_schedule(&lens, cores, quantum, seed, switch_cost, |slot| {
        sim.switch_core(slot.core, slot.now);
        let access = traces[slot.process].accesses()[slot.access_index];
        let event = sim.step_access(Pid(slot.process as u32 + 1), access);
        ring.push(event, observers);
        sim.now()
    });
    ring.flush(observers);
    sim.finish_multi(completion);
    sim.into_result()
}

/// Drives a [`Simulator`] step by step, fanning every [`FaultEvent`] out to
/// the attached [`Observer`]s.
///
/// # Examples
///
/// ```
/// use leap::prelude::*;
/// use leap_sim_core::units::MIB;
///
/// let trace = leap_workloads::stride_trace(4 * MIB, 10, 1);
/// let sim = SimConfig::builder().seed(7).build_vmm().unwrap();
/// let mut remote = HistogramObserver::remote_accesses();
/// let result = sim
///     .session()
///     .observe(&mut remote)
///     .run(&trace);
/// // The stream reproduces the batch histogram exactly.
/// assert_eq!(
///     remote.histogram().len(),
///     result.remote_access_latency.len()
/// );
/// ```
pub struct Session<'obs, S> {
    sim: S,
    observers: Vec<&'obs mut dyn Observer>,
    ring: EventRing,
    seq_check: u64,
}

impl<'obs, S: Simulator> Session<'obs, S> {
    /// Wraps a simulator.
    pub fn new(sim: S) -> Self {
        Session {
            sim,
            observers: Vec::new(),
            ring: EventRing::default(),
            seq_check: 0,
        }
    }

    /// Attaches an observer (chainable).
    pub fn observe(mut self, observer: &'obs mut dyn Observer) -> Self {
        self.observers.push(observer);
        self
    }

    /// The wrapped simulator.
    pub fn simulator(&self) -> &S {
        &self.sim
    }

    /// Sizes per-process state for the given traces (see
    /// [`Simulator::prepare`]).
    pub fn prepare(&mut self, traces: &[AccessTrace]) {
        self.sim.prepare(traces);
    }

    /// Executes one access and queues its event for the observers.
    ///
    /// Events are delivered in batches (see [`EventRing`]); any still-queued
    /// events are flushed by [`Session::finish`], so by the time the result
    /// is returned observers have seen the complete stream.
    pub fn step(&mut self, pid: Pid, access: Access) -> FaultEvent {
        let event = self.sim.step_access(pid, access);
        debug_assert_eq!(event.seq, self.seq_check, "simulators emit dense seqs");
        self.seq_check = event.seq + 1;
        self.ring.push(event, &mut self.observers);
        event
    }

    /// Finishes the run, flushes any batched events, notifies the observers,
    /// and returns the result.
    pub fn finish(self) -> RunResult {
        let mut observers = self.observers;
        let mut ring = self.ring;
        ring.flush(&mut observers);
        let result = self.sim.into_result();
        for observer in &mut observers {
            observer.on_complete(&result);
        }
        result
    }

    /// Streamed equivalent of [`Simulator::run`]: numerically identical
    /// result, with every access also fanned out to the observers.
    pub fn run(mut self, trace: &AccessTrace) -> RunResult {
        self.prepare(std::slice::from_ref(trace));
        for access in trace.iter() {
            self.step(Pid(1), *access);
        }
        self.finish()
    }

    /// Streamed equivalent of `run` preceded by an unmetered population pass
    /// (see [`Simulator::prepopulate`]); the population phase is not
    /// observed, matching how the batch API excludes it from metrics.
    pub fn run_prepopulated(mut self, trace: &AccessTrace) -> RunResult {
        self.prepare(std::slice::from_ref(trace));
        self.sim.prepopulate(Pid(1), trace);
        for access in trace.iter() {
            self.step(Pid(1), *access);
        }
        self.finish()
    }

    /// Streamed equivalent of [`Simulator::run_multi`]: the identical
    /// replay (same scheduler, same seed, same [`crate::config::ReplayMode`]),
    /// with the merged per-core [`FaultEvent`] stream also fanned out to the
    /// observers in `(core, seq)` order.
    pub fn run_multi(mut self, traces: &[AccessTrace]) -> RunResult {
        let result = self.sim.run_multi_observed(traces, &mut self.observers);
        for observer in &mut self.observers {
            observer.on_complete(&result);
        }
        result
    }

    /// Streamed equivalent of [`Simulator::run_interleaved`].
    pub fn run_interleaved(
        mut self,
        traces: &[AccessTrace],
        schedule: &[InterleavedStep],
    ) -> RunResult {
        self.prepare(traces);
        for step in schedule {
            self.step(Pid(step.process as u32 + 1), step.access);
        }
        self.finish()
    }
}

/// An [`Observer`] that accumulates event latencies into a
/// [`LatencyHistogram`], filtered by outcome.
#[derive(Debug, Default)]
pub struct HistogramObserver {
    histogram: LatencyHistogram,
    remote_only: bool,
    events: u64,
}

impl HistogramObserver {
    /// Collects every access's latency.
    pub fn all_accesses() -> Self {
        HistogramObserver::default()
    }

    /// Collects remote page accesses only (cache hits, remote fetches, and
    /// VFS buffered writes — exactly what `RunResult::remote_access_latency`
    /// records).
    pub fn remote_accesses() -> Self {
        HistogramObserver {
            remote_only: true,
            ..HistogramObserver::default()
        }
    }

    /// The accumulated histogram.
    pub fn histogram(&mut self) -> &mut LatencyHistogram {
        &mut self.histogram
    }

    /// Number of events that matched the filter.
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl Observer for HistogramObserver {
    fn on_event(&mut self, event: &FaultEvent) {
        if self.remote_only && !event.outcome.is_remote() {
            return;
        }
        self.events += 1;
        self.histogram.record(event.latency);
    }
}

/// An [`Observer`] counting outcomes, for quick stream-level sanity checks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Resident-page accesses.
    pub local_hits: u64,
    /// Demand-zero minor faults.
    pub minor_faults: u64,
    /// Remote accesses served from the cache.
    pub cache_hits: u64,
    /// Remote accesses that traversed the data path.
    pub remote_fetches: u64,
    /// Buffered VFS writes.
    pub buffered_writes: u64,
    /// Total prefetch candidates issued.
    pub prefetches_issued: u64,
}

impl Observer for OutcomeCounts {
    fn on_event(&mut self, event: &FaultEvent) {
        match event.outcome {
            AccessOutcome::LocalHit => self.local_hits += 1,
            AccessOutcome::MinorFault => self.minor_faults += 1,
            AccessOutcome::CacheHit { .. } => self.cache_hits += 1,
            AccessOutcome::RemoteFetch => self.remote_fetches += 1,
            AccessOutcome::BufferedWrite => self.buffered_writes += 1,
        }
        self.prefetches_issued += event.prefetches_issued as u64;
    }
}

/// Per-core aggregates of one core's slice of the event stream.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoreStats {
    /// Accesses this core completed.
    pub accesses: u64,
    /// Of those, remote page accesses.
    pub remote_accesses: u64,
    /// Prefetch candidates issued from this core.
    pub prefetches_issued: u64,
    /// The core's local time when its last access completed.
    pub last_completed_at: Nanos,
}

/// An [`Observer`] splitting the event stream by core — the input for
/// Figure 13-style scale-up curves (throughput vs process count over C
/// cores), computed entirely from the stream.
///
/// # Examples
///
/// ```
/// use leap::prelude::*;
/// use leap_sim_core::units::MIB;
///
/// let traces = vec![
///     leap_workloads::sequential_trace(2 * MIB, 1),
///     leap_workloads::sequential_trace(2 * MIB, 1),
/// ];
/// let sim = SimConfig::builder().cores(2).seed(3).build_vmm().unwrap();
/// let mut cores = CoreActivity::default();
/// let result = sim.session().observe(&mut cores).run_multi(&traces);
/// // Both processes ran, one per core, and the makespan reported by the
/// // result is the latest core's local completion time.
/// assert_eq!(cores.total_accesses(), result.total_accesses);
/// assert_eq!(cores.completion_time(), result.completion_time);
/// ```
#[derive(Debug, Default, Clone)]
pub struct CoreActivity {
    per_core: Vec<CoreStats>,
}

impl CoreActivity {
    /// Stats per core, indexed by core id (cores that never ran an access
    /// are absent from the tail).
    pub fn per_core(&self) -> &[CoreStats] {
        &self.per_core
    }

    /// Number of cores that completed at least one access.
    pub fn active_cores(&self) -> usize {
        self.per_core.iter().filter(|c| c.accesses > 0).count()
    }

    /// Total accesses across all cores.
    pub fn total_accesses(&self) -> u64 {
        self.per_core.iter().map(|c| c.accesses).sum()
    }

    /// The stream's makespan: the latest per-core completion instant.
    pub fn completion_time(&self) -> Nanos {
        self.per_core
            .iter()
            .map(|c| c.last_completed_at)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Aggregate throughput over the makespan, in accesses per second.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        let secs = self.completion_time().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_accesses() as f64 / secs
    }
}

impl Observer for CoreActivity {
    fn on_event(&mut self, event: &FaultEvent) {
        if event.core >= self.per_core.len() {
            self.per_core.resize(event.core + 1, CoreStats::default());
        }
        let stats = &mut self.per_core[event.core];
        stats.accesses += 1;
        if event.outcome.is_remote() {
            stats.remote_accesses += 1;
        }
        stats.prefetches_issued += event.prefetches_issued as u64;
        stats.last_completed_at = stats.last_completed_at.max(event.completed_at);
    }
}

/// An [`Observer`] recording the full event stream, with per-core views —
/// what the scheduler-determinism tests compare run against run.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    events: Vec<FaultEvent>,
}

impl EventLog {
    /// Every event, in global replay order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events that ran on `core`, in that core's replay order.
    pub fn for_core(&self, core: usize) -> Vec<FaultEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.core == core)
            .collect()
    }

    /// The highest core id observed plus one (0 for an empty log).
    pub fn cores_seen(&self) -> usize {
        self.events.iter().map(|e| e.core + 1).max().unwrap_or(0)
    }
}

impl Observer for EventLog {
    fn on_event(&mut self, event: &FaultEvent) {
        self.events.push(*event);
    }
}
