//! The unified [`Simulator`] trait and the stepwise [`Session`] API.
//!
//! Historically `VmmSimulator` and `VfsSimulator` were two unrelated structs
//! exposing only batch `run(trace) -> RunResult`. This module puts both
//! behind one trait and adds a streaming mode: a [`Session`] drives a
//! simulator access by access and hands every resulting [`FaultEvent`] to
//! [`Observer`] hooks *while the run executes*. The batch result is
//! unchanged — `Session::run` and `Simulator::run` replay the exact same
//! step sequence — so figures can be computed from the stream with
//! numerically identical output (see `leap-bench`'s Figure 2/7 percentile
//! rows).

use crate::config::SimConfig;
use crate::result::RunResult;
use leap_mem::{CacheOrigin, Pid};
use leap_metrics::LatencyHistogram;
use leap_sim_core::Nanos;
use leap_workloads::multi::InterleavedStep;
use leap_workloads::{Access, AccessTrace};

/// How one access was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The page was resident and mapped: a local DRAM reference.
    LocalHit,
    /// First touch: a demand-zero minor fault.
    MinorFault,
    /// A remote page access served from the swap/prefetch cache.
    CacheHit {
        /// How the entry got into the cache (prefetched vs demand-cached).
        origin: CacheOrigin,
    },
    /// A remote page access that traversed the data path to the backend.
    RemoteFetch,
    /// A buffered file write absorbed by the VFS cache (VFS front-end only).
    BufferedWrite,
}

impl AccessOutcome {
    /// True for the outcomes the paper counts as *remote page accesses*
    /// (everything that went to the remote-access machinery rather than
    /// plain resident memory).
    pub fn is_remote(self) -> bool {
        !matches!(self, AccessOutcome::LocalHit | AccessOutcome::MinorFault)
    }
}

/// One access's journey through the fault engine, as emitted to observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 0-based index of the access in replay order.
    pub seq: u64,
    /// The accessing process.
    pub pid: Pid,
    /// The virtual page (VMM) or file page (VFS) touched.
    pub page: u64,
    /// Whether the access was a write.
    pub is_write: bool,
    /// How the access was served.
    pub outcome: AccessOutcome,
    /// Latency charged to the access (what the latency histograms record).
    pub latency: Nanos,
    /// Simulated time when the access completed.
    pub completed_at: Nanos,
    /// Prefetch candidates issued on the back of this access.
    pub prefetches_issued: u32,
}

/// A hook receiving the event stream of a [`Session`] run.
pub trait Observer {
    /// Called after every access, in replay order.
    fn on_event(&mut self, event: &FaultEvent);

    /// Called once with the finished result.
    fn on_complete(&mut self, _result: &RunResult) {}
}

/// A paging/file front-end that replays access traces.
///
/// The required methods are the stepwise core ([`Simulator::prepare`], then
/// [`Simulator::step_access`] per access, then [`Simulator::into_result`]);
/// the batch entry points [`Simulator::run`] and [`Simulator::run_multi`]
/// are provided on top of them, as is the observable [`Session`] wrapper.
pub trait Simulator: Sized {
    /// The configuration this simulator was built with.
    fn config(&self) -> &SimConfig;

    /// The run label used in reports (component names + memory fraction).
    fn label(&self) -> &str;

    /// Sizes per-process state for the given traces (process `i` in
    /// `traces` becomes `Pid(i + 1)`) and stamps the result metadata.
    fn prepare(&mut self, traces: &[AccessTrace]);

    /// Replays the working set once without recording metrics (the paper's
    /// allocate-and-initialise phase). Front-ends without that notion keep
    /// the default no-op.
    fn prepopulate(&mut self, _pid: Pid, _trace: &AccessTrace) {}

    /// Executes one access for `pid`, charging its latency, and describes it.
    fn step_access(&mut self, pid: Pid, access: Access) -> FaultEvent;

    /// Finishes the run and returns the accumulated result.
    fn into_result(self) -> RunResult;

    /// Replays a single-process trace to completion.
    fn run(mut self, trace: &AccessTrace) -> RunResult {
        self.prepare(std::slice::from_ref(trace));
        for access in trace.iter() {
            self.step_access(Pid(1), *access);
        }
        self.into_result()
    }

    /// Replays an interleaved multi-process schedule (as produced by
    /// [`leap_workloads::interleave`]). How per-process state is sized is up
    /// to the front-end's [`Simulator::prepare`]: the VMM gives each process
    /// a cgroup-style limit from its own trace (the paper's per-application
    /// limits), while the VFS constrains one shared cache budget by the
    /// combined working set.
    fn run_multi(mut self, traces: &[AccessTrace], schedule: &[InterleavedStep]) -> RunResult {
        self.prepare(traces);
        for step in schedule {
            self.step_access(Pid(step.process as u32 + 1), step.access);
        }
        self.into_result()
    }

    /// Wraps this simulator in an observable [`Session`].
    fn session<'obs>(self) -> Session<'obs, Self> {
        Session::new(self)
    }
}

/// Drives a [`Simulator`] step by step, fanning every [`FaultEvent`] out to
/// the attached [`Observer`]s.
///
/// # Examples
///
/// ```
/// use leap::prelude::*;
/// use leap_sim_core::units::MIB;
///
/// let trace = leap_workloads::stride_trace(4 * MIB, 10, 1);
/// let sim = SimConfig::builder().seed(7).build_vmm().unwrap();
/// let mut remote = HistogramObserver::remote_accesses();
/// let result = sim
///     .session()
///     .observe(&mut remote)
///     .run(&trace);
/// // The stream reproduces the batch histogram exactly.
/// assert_eq!(
///     remote.histogram().len(),
///     result.remote_access_latency.len()
/// );
/// ```
pub struct Session<'obs, S> {
    sim: S,
    observers: Vec<&'obs mut dyn Observer>,
    seq_check: u64,
}

impl<'obs, S: Simulator> Session<'obs, S> {
    /// Wraps a simulator.
    pub fn new(sim: S) -> Self {
        Session {
            sim,
            observers: Vec::new(),
            seq_check: 0,
        }
    }

    /// Attaches an observer (chainable).
    pub fn observe(mut self, observer: &'obs mut dyn Observer) -> Self {
        self.observers.push(observer);
        self
    }

    /// The wrapped simulator.
    pub fn simulator(&self) -> &S {
        &self.sim
    }

    /// Sizes per-process state for the given traces (see
    /// [`Simulator::prepare`]).
    pub fn prepare(&mut self, traces: &[AccessTrace]) {
        self.sim.prepare(traces);
    }

    /// Executes one access and notifies the observers.
    pub fn step(&mut self, pid: Pid, access: Access) -> FaultEvent {
        let event = self.sim.step_access(pid, access);
        debug_assert_eq!(event.seq, self.seq_check, "simulators emit dense seqs");
        self.seq_check = event.seq + 1;
        for observer in &mut self.observers {
            observer.on_event(&event);
        }
        event
    }

    /// Finishes the run, notifies the observers, and returns the result.
    pub fn finish(self) -> RunResult {
        let result = self.sim.into_result();
        let mut observers = self.observers;
        for observer in &mut observers {
            observer.on_complete(&result);
        }
        result
    }

    /// Streamed equivalent of [`Simulator::run`]: numerically identical
    /// result, with every access also fanned out to the observers.
    pub fn run(mut self, trace: &AccessTrace) -> RunResult {
        self.prepare(std::slice::from_ref(trace));
        for access in trace.iter() {
            self.step(Pid(1), *access);
        }
        self.finish()
    }

    /// Streamed equivalent of `run` preceded by an unmetered population pass
    /// (see [`Simulator::prepopulate`]); the population phase is not
    /// observed, matching how the batch API excludes it from metrics.
    pub fn run_prepopulated(mut self, trace: &AccessTrace) -> RunResult {
        self.prepare(std::slice::from_ref(trace));
        self.sim.prepopulate(Pid(1), trace);
        for access in trace.iter() {
            self.step(Pid(1), *access);
        }
        self.finish()
    }

    /// Streamed equivalent of [`Simulator::run_multi`].
    pub fn run_multi(mut self, traces: &[AccessTrace], schedule: &[InterleavedStep]) -> RunResult {
        self.prepare(traces);
        for step in schedule {
            self.step(Pid(step.process as u32 + 1), step.access);
        }
        self.finish()
    }
}

/// An [`Observer`] that accumulates event latencies into a
/// [`LatencyHistogram`], filtered by outcome.
#[derive(Debug, Default)]
pub struct HistogramObserver {
    histogram: LatencyHistogram,
    remote_only: bool,
    events: u64,
}

impl HistogramObserver {
    /// Collects every access's latency.
    pub fn all_accesses() -> Self {
        HistogramObserver::default()
    }

    /// Collects remote page accesses only (cache hits, remote fetches, and
    /// VFS buffered writes — exactly what `RunResult::remote_access_latency`
    /// records).
    pub fn remote_accesses() -> Self {
        HistogramObserver {
            remote_only: true,
            ..HistogramObserver::default()
        }
    }

    /// The accumulated histogram.
    pub fn histogram(&mut self) -> &mut LatencyHistogram {
        &mut self.histogram
    }

    /// Number of events that matched the filter.
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl Observer for HistogramObserver {
    fn on_event(&mut self, event: &FaultEvent) {
        if self.remote_only && !event.outcome.is_remote() {
            return;
        }
        self.events += 1;
        self.histogram.record(event.latency);
    }
}

/// An [`Observer`] counting outcomes, for quick stream-level sanity checks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Resident-page accesses.
    pub local_hits: u64,
    /// Demand-zero minor faults.
    pub minor_faults: u64,
    /// Remote accesses served from the cache.
    pub cache_hits: u64,
    /// Remote accesses that traversed the data path.
    pub remote_fetches: u64,
    /// Buffered VFS writes.
    pub buffered_writes: u64,
    /// Total prefetch candidates issued.
    pub prefetches_issued: u64,
}

impl Observer for OutcomeCounts {
    fn on_event(&mut self, event: &FaultEvent) {
        match event.outcome {
            AccessOutcome::LocalHit => self.local_hits += 1,
            AccessOutcome::MinorFault => self.minor_faults += 1,
            AccessOutcome::CacheHit { .. } => self.cache_hits += 1,
            AccessOutcome::RemoteFetch => self.remote_fetches += 1,
            AccessOutcome::BufferedWrite => self.buffered_writes += 1,
        }
        self.prefetches_issued += event.prefetches_issued as u64;
    }
}
