//! The page access tracker: per-process prefetcher isolation (§4.1).
//!
//! Leap keeps one access history and prefetcher state per process, so
//! concurrent applications cannot pollute each other's trend detection. The
//! default Linux swap path, in contrast, makes its readahead decisions from
//! the single shared swap-in stream. [`PageAccessTracker`] models both modes:
//! with isolation every process gets its own prefetcher instance; without it
//! all processes share one.

use leap_mem::Pid;
use leap_prefetcher::{
    LeapConfig, LeapPrefetcher, NextNLinePrefetcher, NoPrefetcher, PageAddr, PrefetchDecision,
    Prefetcher, PrefetcherKind, ReadAheadPrefetcher, StridePrefetcher,
};
use std::collections::HashMap;

/// Builds a prefetcher instance of the given kind.
///
/// `history_size` and `max_window` only affect the Leap prefetcher; the
/// baselines use `max_window` as their aggressiveness bound.
pub fn build_prefetcher(
    kind: PrefetcherKind,
    history_size: usize,
    max_window: usize,
) -> Box<dyn Prefetcher> {
    match kind {
        PrefetcherKind::None => Box::new(NoPrefetcher),
        PrefetcherKind::NextNLine => Box::new(NextNLinePrefetcher::new(max_window.max(1))),
        PrefetcherKind::Stride => Box::new(StridePrefetcher::new(max_window.max(1))),
        PrefetcherKind::ReadAhead => Box::new(ReadAheadPrefetcher::new(max_window.max(1))),
        PrefetcherKind::Leap => Box::new(LeapPrefetcher::new(LeapConfig {
            history_size: history_size.max(1),
            n_split: 4,
            max_prefetch_window: max_window.max(1),
        })),
    }
}

/// Routes fault and hit notifications to per-process (or shared) prefetchers.
///
/// # Examples
///
/// ```
/// use leap::tracker::PageAccessTracker;
/// use leap_mem::Pid;
/// use leap_prefetcher::{PageAddr, PrefetcherKind};
///
/// let mut tracker = PageAccessTracker::new(PrefetcherKind::Leap, 32, 8, true);
/// let decision = tracker.on_fault(Pid(1), PageAddr(100));
/// assert!(decision.len() <= 8);
/// ```
#[derive(Debug)]
pub struct PageAccessTracker {
    kind: PrefetcherKind,
    history_size: usize,
    max_window: usize,
    isolated: bool,
    per_process: HashMap<Pid, Box<dyn Prefetcher>>,
    shared: Box<dyn Prefetcher>,
}

impl PageAccessTracker {
    /// Creates a tracker.
    ///
    /// With `isolated == true` each process gets its own prefetcher state
    /// (Leap's behaviour); otherwise a single shared prefetcher sees the
    /// merged access stream (the kernel's behaviour).
    pub fn new(
        kind: PrefetcherKind,
        history_size: usize,
        max_window: usize,
        isolated: bool,
    ) -> Self {
        PageAccessTracker {
            kind,
            history_size,
            max_window,
            isolated,
            per_process: HashMap::new(),
            shared: build_prefetcher(kind, history_size, max_window),
        }
    }

    /// Which prefetching algorithm the tracker instantiates.
    pub fn kind(&self) -> PrefetcherKind {
        self.kind
    }

    /// True if per-process isolation is active.
    pub fn is_isolated(&self) -> bool {
        self.isolated
    }

    /// Number of per-process prefetcher instances created so far.
    pub fn tracked_processes(&self) -> usize {
        self.per_process.len()
    }

    fn prefetcher_for(&mut self, pid: Pid) -> &mut Box<dyn Prefetcher> {
        if self.isolated {
            let (kind, history, window) = (self.kind, self.history_size, self.max_window);
            self.per_process
                .entry(pid)
                .or_insert_with(|| build_prefetcher(kind, history, window))
        } else {
            &mut self.shared
        }
    }

    /// Records a remote page fault by `pid` at swap offset `addr` and returns
    /// the prefetch decision.
    pub fn on_fault(&mut self, pid: Pid, addr: PageAddr) -> PrefetchDecision {
        self.prefetcher_for(pid).on_fault(addr)
    }

    /// Records a prefetch-cache hit by `pid` at swap offset `addr`.
    pub fn on_prefetch_hit(&mut self, pid: Pid, addr: PageAddr) {
        self.prefetcher_for(pid).on_prefetch_hit(addr);
    }

    /// Resets all prefetcher state.
    pub fn reset(&mut self) {
        self.shared.reset();
        for p in self.per_process.values_mut() {
            p.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_kind() {
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::NextNLine,
            PrefetcherKind::Stride,
            PrefetcherKind::ReadAhead,
            PrefetcherKind::Leap,
        ] {
            let p = build_prefetcher(kind, 32, 8);
            assert_eq!(p.kind(), kind);
        }
    }

    #[test]
    fn isolated_tracker_keeps_processes_apart() {
        let mut tracker = PageAccessTracker::new(PrefetcherKind::Leap, 32, 8, true);
        // Process 1 faults sequentially; process 2 faults randomly in between.
        let mut last_p1_decision = PrefetchDecision::none();
        for i in 0..64u64 {
            last_p1_decision = tracker.on_fault(Pid(1), PageAddr(i));
            let scrambled = (i * 7919 + 13) % 100_000 + 10_000;
            let _ = tracker.on_fault(Pid(2), PageAddr(scrambled));
        }
        assert_eq!(tracker.tracked_processes(), 2);
        // Process 1's sequential trend survives process 2's noise.
        assert!(
            !last_p1_decision.is_empty(),
            "isolation should let process 1 keep prefetching"
        );
        assert!(last_p1_decision.prefetch.contains(&PageAddr(64)));
    }

    #[test]
    fn shared_tracker_mixes_streams() {
        let mut tracker = PageAccessTracker::new(PrefetcherKind::Leap, 32, 8, false);
        let mut last_p1_decision = PrefetchDecision::none();
        for i in 0..64u64 {
            last_p1_decision = tracker.on_fault(Pid(1), PageAddr(i));
            let scrambled = (i * 7919 + 13) % 100_000 + 10_000;
            let _ = tracker.on_fault(Pid(2), PageAddr(scrambled));
        }
        assert_eq!(tracker.tracked_processes(), 0);
        // The interleaved random faults destroy the sequential trend, so the
        // shared prefetcher ends up throttled (or at best speculative).
        assert!(
            last_p1_decision.is_empty() || last_p1_decision.speculative,
            "shared stream should not sustain confident prefetching: {last_p1_decision:?}"
        );
    }

    #[test]
    fn hits_are_routed_to_the_right_process() {
        let mut tracker = PageAccessTracker::new(PrefetcherKind::Leap, 32, 8, true);
        let _ = tracker.on_fault(Pid(1), PageAddr(10));
        tracker.on_prefetch_hit(Pid(1), PageAddr(11));
        // Hitting for an unknown process lazily creates its prefetcher.
        tracker.on_prefetch_hit(Pid(9), PageAddr(5));
        assert_eq!(tracker.tracked_processes(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut tracker = PageAccessTracker::new(PrefetcherKind::Leap, 32, 8, true);
        for i in 0..32u64 {
            let _ = tracker.on_fault(Pid(1), PageAddr(i));
        }
        tracker.reset();
        // After a reset, the very first fault cannot know any trend, so the
        // decision is at most a single-page one.
        let d = tracker.on_fault(Pid(1), PageAddr(500));
        assert!(d.len() <= 1);
    }

    #[test]
    fn accessors_report_configuration() {
        let tracker = PageAccessTracker::new(PrefetcherKind::Stride, 32, 4, false);
        assert_eq!(tracker.kind(), PrefetcherKind::Stride);
        assert!(!tracker.is_isolated());
    }
}
