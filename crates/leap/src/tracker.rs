//! The page access tracker: per-process prefetcher isolation (§4.1).
//!
//! Leap keeps one access history and prefetcher state per process, so
//! concurrent applications cannot pollute each other's trend detection. The
//! default Linux swap path, in contrast, makes its readahead decisions from
//! the single shared swap-in stream. [`PageAccessTracker`] models both modes:
//! with isolation every process gets its own prefetcher instance; without it
//! all processes share one.
//!
//! For scheduled multi-core replays the tracker additionally shards by core
//! ([`PageAccessTracker::set_per_core`]): trend state is then keyed by
//! `(process, core)`, matching the per-CPU majority-trend state the kernel
//! implementation of Leap keeps so cores never contend on one history
//! buffer.
//!
//! Prefetcher instances come from a [`PrefetcherFactory`], so any algorithm
//! registered with the component registry — built-in or third-party — gets
//! correct per-process isolation for free.

use crate::components::{KindPrefetcherFactory, PrefetcherFactory};
use crate::config::SimConfig;
use leap_mem::Pid;
use leap_prefetcher::{PageAddr, PrefetchDecision, Prefetcher, PrefetcherKind};
use std::collections::HashMap;
use std::sync::Arc;

pub use crate::components::build_prefetcher;

/// Routes fault and hit notifications to per-process (or shared) prefetchers.
///
/// # Examples
///
/// ```
/// use leap::tracker::PageAccessTracker;
/// use leap_mem::Pid;
/// use leap_prefetcher::{PageAddr, PrefetcherKind};
///
/// let mut tracker = PageAccessTracker::from_kind(PrefetcherKind::Leap, 32, 8, true);
/// let decision = tracker.on_fault(Pid(1), PageAddr(100));
/// assert!(decision.len() <= 8);
/// ```
#[derive(Debug)]
pub struct PageAccessTracker {
    factory: Arc<dyn PrefetcherFactory>,
    config: SimConfig,
    /// Isolated prefetcher instances, keyed by `(process, core)`. The core
    /// component is always 0 unless [`PageAccessTracker::set_per_core`] has
    /// switched the tracker into per-core mode.
    per_process: HashMap<(Pid, usize), Box<dyn Prefetcher>>,
    shared: Box<dyn Prefetcher>,
    per_core: bool,
}

impl PageAccessTracker {
    /// Creates a tracker that builds prefetchers with `factory` under the
    /// given configuration.
    ///
    /// With `config.per_process_isolation` each process gets its own
    /// prefetcher state (Leap's behaviour); otherwise a single shared
    /// prefetcher sees the merged access stream (the kernel's behaviour).
    pub fn new(factory: Arc<dyn PrefetcherFactory>, config: &SimConfig) -> Self {
        PageAccessTracker {
            shared: factory.build(config),
            factory,
            config: *config,
            per_process: HashMap::new(),
            per_core: false,
        }
    }

    /// Convenience constructor from a built-in [`PrefetcherKind`] (mostly
    /// for tests and bare replay tools).
    pub fn from_kind(
        kind: PrefetcherKind,
        history_size: usize,
        max_window: usize,
        isolated: bool,
    ) -> Self {
        let mut config = SimConfig::leap_defaults();
        config.prefetcher = kind;
        config.history_size = history_size;
        config.max_prefetch_window = max_window;
        config.per_process_isolation = isolated;
        PageAccessTracker::new(Arc::new(KindPrefetcherFactory(kind)), &config)
    }

    /// Name of the prefetching algorithm the tracker instantiates.
    pub fn prefetcher_name(&self) -> &'static str {
        self.factory.name()
    }

    /// True if per-process isolation is active.
    pub fn is_isolated(&self) -> bool {
        self.config.per_process_isolation
    }

    /// Switches per-core sharding of the trend state on or off. In per-core
    /// mode every `(process, core)` pair gets its own prefetcher instance
    /// (the kernel's per-CPU majority-trend state); otherwise the core a
    /// fault arrives on is ignored.
    pub fn set_per_core(&mut self, per_core: bool) {
        self.per_core = per_core;
    }

    /// True if trend state is sharded by core.
    pub fn is_per_core(&self) -> bool {
        self.per_core
    }

    /// Number of distinct processes with isolated prefetcher state so far.
    pub fn tracked_processes(&self) -> usize {
        let mut pids: Vec<Pid> = self.per_process.keys().map(|(pid, _)| *pid).collect();
        pids.sort_unstable_by_key(|p| p.0);
        pids.dedup();
        pids.len()
    }

    /// Number of isolated prefetcher instances (one per `(process, core)`
    /// pair in per-core mode, one per process otherwise).
    pub fn tracked_instances(&self) -> usize {
        self.per_process.len()
    }

    fn prefetcher_for(&mut self, pid: Pid, core: usize) -> &mut Box<dyn Prefetcher> {
        if self.config.per_process_isolation {
            let key = (pid, if self.per_core { core } else { 0 });
            let (factory, config) = (&self.factory, &self.config);
            self.per_process
                .entry(key)
                .or_insert_with(|| factory.build(config))
        } else {
            &mut self.shared
        }
    }

    /// Records a remote page fault by `pid` at swap offset `addr` and returns
    /// the prefetch decision (single-core replays: core 0).
    pub fn on_fault(&mut self, pid: Pid, addr: PageAddr) -> PrefetchDecision {
        self.on_fault_at(pid, 0, addr)
    }

    /// Records a remote page fault by `pid` running on `core` at swap offset
    /// `addr` and returns the prefetch decision.
    pub fn on_fault_at(&mut self, pid: Pid, core: usize, addr: PageAddr) -> PrefetchDecision {
        self.prefetcher_for(pid, core).on_fault(addr)
    }

    /// Records a prefetch-cache hit by `pid` at swap offset `addr`
    /// (single-core replays: core 0).
    pub fn on_prefetch_hit(&mut self, pid: Pid, addr: PageAddr) {
        self.on_prefetch_hit_at(pid, 0, addr);
    }

    /// Records a prefetch-cache hit by `pid` running on `core` at swap
    /// offset `addr`.
    pub fn on_prefetch_hit_at(&mut self, pid: Pid, core: usize, addr: PageAddr) {
        self.prefetcher_for(pid, core).on_prefetch_hit(addr);
    }

    /// Resets all prefetcher state.
    pub fn reset(&mut self) {
        self.shared.reset();
        for p in self.per_process.values_mut() {
            p.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_kind() {
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::NextNLine,
            PrefetcherKind::Stride,
            PrefetcherKind::ReadAhead,
            PrefetcherKind::Leap,
        ] {
            let p = build_prefetcher(kind, 32, 8);
            assert_eq!(p.name(), kind.label());
        }
    }

    #[test]
    fn isolated_tracker_keeps_processes_apart() {
        let mut tracker = PageAccessTracker::from_kind(PrefetcherKind::Leap, 32, 8, true);
        // Process 1 faults sequentially; process 2 faults randomly in between.
        let mut last_p1_decision = PrefetchDecision::none();
        for i in 0..64u64 {
            last_p1_decision = tracker.on_fault(Pid(1), PageAddr(i));
            let scrambled = (i * 7919 + 13) % 100_000 + 10_000;
            let _ = tracker.on_fault(Pid(2), PageAddr(scrambled));
        }
        assert_eq!(tracker.tracked_processes(), 2);
        // Process 1's sequential trend survives process 2's noise.
        assert!(
            !last_p1_decision.is_empty(),
            "isolation should let process 1 keep prefetching"
        );
        assert!(last_p1_decision.contains(PageAddr(64)));
    }

    #[test]
    fn shared_tracker_mixes_streams() {
        let mut tracker = PageAccessTracker::from_kind(PrefetcherKind::Leap, 32, 8, false);
        let mut last_p1_decision = PrefetchDecision::none();
        for i in 0..64u64 {
            last_p1_decision = tracker.on_fault(Pid(1), PageAddr(i));
            let scrambled = (i * 7919 + 13) % 100_000 + 10_000;
            let _ = tracker.on_fault(Pid(2), PageAddr(scrambled));
        }
        assert_eq!(tracker.tracked_processes(), 0);
        // The interleaved random faults destroy the sequential trend, so the
        // shared prefetcher ends up throttled (or at best speculative).
        assert!(
            last_p1_decision.is_empty() || last_p1_decision.speculative,
            "shared stream should not sustain confident prefetching: {last_p1_decision:?}"
        );
    }

    #[test]
    fn per_core_mode_keeps_cores_apart() {
        let mut tracker = PageAccessTracker::from_kind(PrefetcherKind::Leap, 32, 8, true);
        tracker.set_per_core(true);
        assert!(tracker.is_per_core());
        // The same process faults sequentially on core 0 while core 1 sees a
        // scrambled stream; per-core state keeps core 0's trend intact.
        let mut last = PrefetchDecision::none();
        for i in 0..64u64 {
            last = tracker.on_fault_at(Pid(1), 0, PageAddr(i));
            let scrambled = (i * 7919 + 13) % 100_000 + 10_000;
            let _ = tracker.on_fault_at(Pid(1), 1, PageAddr(scrambled));
        }
        assert_eq!(tracker.tracked_processes(), 1);
        assert_eq!(tracker.tracked_instances(), 2);
        assert!(
            !last.is_empty(),
            "core 0's sequential trend should survive core 1's noise"
        );
    }

    #[test]
    fn hits_are_routed_to_the_right_process() {
        let mut tracker = PageAccessTracker::from_kind(PrefetcherKind::Leap, 32, 8, true);
        let _ = tracker.on_fault(Pid(1), PageAddr(10));
        tracker.on_prefetch_hit(Pid(1), PageAddr(11));
        // Hitting for an unknown process lazily creates its prefetcher.
        tracker.on_prefetch_hit(Pid(9), PageAddr(5));
        assert_eq!(tracker.tracked_processes(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut tracker = PageAccessTracker::from_kind(PrefetcherKind::Leap, 32, 8, true);
        for i in 0..32u64 {
            let _ = tracker.on_fault(Pid(1), PageAddr(i));
        }
        tracker.reset();
        // After a reset, the very first fault cannot know any trend, so the
        // decision is at most a single-page one.
        let d = tracker.on_fault(Pid(1), PageAddr(500));
        assert!(d.len() <= 1);
    }

    #[test]
    fn accessors_report_configuration() {
        let tracker = PageAccessTracker::from_kind(PrefetcherKind::Stride, 32, 4, false);
        assert_eq!(tracker.prefetcher_name(), PrefetcherKind::Stride.label());
        assert!(!tracker.is_isolated());
    }

    #[test]
    fn custom_factories_get_isolation_too() {
        #[derive(Debug)]
        struct Fixed;
        impl PrefetcherFactory for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn build(&self, _config: &SimConfig) -> Box<dyn Prefetcher> {
                build_prefetcher(PrefetcherKind::NextNLine, 1, 2)
            }
        }
        let mut config = SimConfig::leap_defaults();
        config.per_process_isolation = true;
        let mut tracker = PageAccessTracker::new(Arc::new(Fixed), &config);
        let _ = tracker.on_fault(Pid(1), PageAddr(10));
        let _ = tracker.on_fault(Pid(2), PageAddr(20));
        assert_eq!(tracker.tracked_processes(), 2);
        assert_eq!(tracker.prefetcher_name(), "fixed");
    }
}
