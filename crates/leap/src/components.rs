//! Pluggable simulator components: factory traits and the registry.
//!
//! The paper's claim is that Leap is a *composition* of three separable
//! mechanisms — the majority-trend prefetcher, the lean data path, and eager
//! eviction. This module makes that composition a first-class, open API:
//!
//! - [`PrefetcherFactory`], [`DataPathFactory`], and [`EvictionFactory`]
//!   build the three mechanism instances for a given [`SimConfig`]. A
//!   factory (rather than an instance) is what plugs in because per-process
//!   isolation (§4.1) needs one fresh prefetcher per process.
//! - [`ComponentRegistry`] resolves component *names* to factories. The
//!   closed enums ([`PrefetcherKind`], [`DataPathKind`], [`EvictionPolicy`])
//!   are registered as the built-ins; third-party components — an oracle or
//!   3PO-style programmed prefetch policy, a custom interconnect model, a
//!   different reclaimer — register alongside them without touching this
//!   crate, via [`ComponentRegistry::register_prefetcher`] (etc.) or
//!   [`crate::SimConfigBuilder::custom_prefetcher`] (etc.).
//!
//! Built-in factories honour every relevant [`SimConfig`] knob: history and
//! window sizes for prefetchers, core count and backend (including the
//! constant-latency overrides) for data paths.

use crate::config::{DataPathKind, EvictionPolicy, SimConfig};
use crate::error::ConfigError;
use leap_datapath::{DataPath, LeanDataPath, LegacyDataPath};
use leap_eviction::{CacheEvictor, EagerEvictor, LazyEvictor};
use leap_prefetcher::{
    LeapConfig, LeapPrefetcher, NextNLinePrefetcher, NoPrefetcher, Prefetcher, PrefetcherKind,
    ReadAheadPrefetcher, StridePrefetcher,
};
use leap_remote::{ConstLatencyOverride, FaultPlan, HostAgent, HostAgentConfig, RemoteCluster};
use leap_sim_core::DetRng;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Builds prefetcher instances for a configuration.
///
/// One instance is requested per process under per-process isolation, so
/// implementations must return fresh, independent state on every call.
pub trait PrefetcherFactory: fmt::Debug + Send + Sync {
    /// The component name used in the registry and in report labels.
    fn name(&self) -> &'static str;

    /// Builds one prefetcher instance for `config`.
    fn build(&self, config: &SimConfig) -> Box<dyn Prefetcher>;
}

/// Builds the data path serving cache misses for a configuration.
pub trait DataPathFactory: fmt::Debug + Send + Sync {
    /// The component name used in the registry and in report labels.
    fn name(&self) -> &'static str;

    /// Builds the data path. Randomness must come only from `rng` so runs
    /// stay deterministic for a seed.
    fn build(&self, config: &SimConfig, rng: &mut DetRng) -> Box<dyn DataPath>;
}

/// Builds the prefetch-cache eviction policy for a configuration.
pub trait EvictionFactory: fmt::Debug + Send + Sync {
    /// The component name used in the registry and in report labels.
    fn name(&self) -> &'static str;

    /// Builds the evictor.
    fn build(&self, config: &SimConfig) -> Box<dyn CacheEvictor>;
}

/// Built-in prefetcher factory wrapping a [`PrefetcherKind`].
#[derive(Debug, Clone, Copy)]
pub struct KindPrefetcherFactory(pub PrefetcherKind);

impl PrefetcherFactory for KindPrefetcherFactory {
    fn name(&self) -> &'static str {
        self.0.label()
    }

    fn build(&self, config: &SimConfig) -> Box<dyn Prefetcher> {
        build_prefetcher(self.0, config.history_size, config.max_prefetch_window)
    }
}

/// Builds a prefetcher instance of the given kind.
///
/// `history_size` and `max_window` only affect the Leap prefetcher; the
/// baselines use `max_window` as their aggressiveness bound.
pub fn build_prefetcher(
    kind: PrefetcherKind,
    history_size: usize,
    max_window: usize,
) -> Box<dyn Prefetcher> {
    match kind {
        PrefetcherKind::None => Box::new(NoPrefetcher),
        PrefetcherKind::NextNLine => Box::new(NextNLinePrefetcher::new(max_window.max(1))),
        PrefetcherKind::Stride => Box::new(StridePrefetcher::new(max_window.max(1))),
        PrefetcherKind::ReadAhead => Box::new(ReadAheadPrefetcher::new(max_window.max(1))),
        PrefetcherKind::Leap => Box::new(LeapPrefetcher::new(LeapConfig {
            history_size: history_size.max(1),
            n_split: 4,
            max_prefetch_window: max_window.max(1),
        })),
    }
}

/// The configuration's constant-latency backend overrides, if any. A
/// direction left unset keeps the paper-calibrated distribution.
fn backend_override(config: &SimConfig) -> Option<ConstLatencyOverride> {
    if config.backend_read_latency.is_none() && config.backend_write_latency.is_none() {
        return None;
    }
    Some(ConstLatencyOverride {
        read: config.backend_read_latency,
        write: config.backend_write_latency,
    })
}

/// Built-in factory for the default Linux block-layer data path.
#[derive(Debug, Clone, Copy)]
pub struct LegacyDataPathFactory;

impl DataPathFactory for LegacyDataPathFactory {
    fn name(&self) -> &'static str {
        DataPathKind::LinuxDefault.label()
    }

    fn build(&self, config: &SimConfig, rng: &mut DetRng) -> Box<dyn DataPath> {
        let mut path = LegacyDataPath::new(config.backend, rng.fork());
        if let Some(overrides) = backend_override(config) {
            path.set_backend(overrides.into_backend(config.backend));
        }
        if config.fault.is_active() {
            // machine_count 0: the block-layer path has no remote cluster,
            // so it sees the epoch faults but never machine failures.
            path.install_fault_plan(FaultPlan::from_spec(config.seed, &config.fault, 0));
        }
        Box::new(path)
    }
}

/// Built-in factory for Leap's lean data path over the remote-memory host
/// agent.
#[derive(Debug, Clone, Copy)]
pub struct LeanDataPathFactory;

impl DataPathFactory for LeanDataPathFactory {
    fn name(&self) -> &'static str {
        DataPathKind::Leap.label()
    }

    fn build(&self, config: &SimConfig, rng: &mut DetRng) -> Box<dyn DataPath> {
        let agent = HostAgent::new(
            HostAgentConfig {
                cores: config.cores,
                backend: config.backend,
                ..HostAgentConfig::default()
            },
            RemoteCluster::homogeneous(4, 256),
            rng.fork(),
        );
        let mut path = LeanDataPath::new(agent, rng.fork());
        if let Some(overrides) = backend_override(config) {
            path.agent_mut()
                .set_backend(overrides.into_backend(config.backend));
        }
        if config.fault.is_active() {
            let machines = path.agent().cluster().len() as u32;
            path.agent_mut().install_fault_plan(FaultPlan::from_spec(
                config.seed,
                &config.fault,
                machines,
            ));
        }
        if config.recovery.is_active() {
            path.agent_mut().install_recovery(
                config.recovery,
                leap_remote::recovery_stream_seed(config.seed),
            );
        }
        Box::new(path)
    }
}

/// Built-in eviction factory wrapping an [`EvictionPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct PolicyEvictionFactory(pub EvictionPolicy);

impl EvictionFactory for PolicyEvictionFactory {
    fn name(&self) -> &'static str {
        self.0.label()
    }

    fn build(&self, _config: &SimConfig) -> Box<dyn CacheEvictor> {
        match self.0 {
            EvictionPolicy::Lazy => Box::new(LazyEvictor::new()),
            EvictionPolicy::Eager => Box::new(EagerEvictor::new()),
        }
    }
}

/// Name-indexed factories for the three component roles.
///
/// [`ComponentRegistry::builtin`] registers every enum variant under its
/// `label()`; user components are added with the `register_*` methods and
/// selected by name through [`crate::SimConfigBuilder::prefetcher_named`]
/// (etc.) or injected directly with
/// [`crate::SimConfigBuilder::custom_prefetcher`] (etc.).
#[derive(Debug, Clone, Default)]
pub struct ComponentRegistry {
    prefetchers: BTreeMap<String, Arc<dyn PrefetcherFactory>>,
    data_paths: BTreeMap<String, Arc<dyn DataPathFactory>>,
    evictions: BTreeMap<String, Arc<dyn EvictionFactory>>,
}

impl ComponentRegistry {
    /// An empty registry (no components at all).
    pub fn empty() -> Self {
        ComponentRegistry::default()
    }

    /// The registry with every built-in component registered: all
    /// [`PrefetcherKind`]s, both [`DataPathKind`]s, both
    /// [`EvictionPolicy`]s, each under its `label()`.
    pub fn builtin() -> Self {
        let mut registry = ComponentRegistry::empty();
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::NextNLine,
            PrefetcherKind::Stride,
            PrefetcherKind::ReadAhead,
            PrefetcherKind::Leap,
        ] {
            registry.register_prefetcher(Arc::new(KindPrefetcherFactory(kind)));
        }
        registry.register_data_path(Arc::new(LegacyDataPathFactory));
        registry.register_data_path(Arc::new(LeanDataPathFactory));
        registry.register_eviction(Arc::new(PolicyEvictionFactory(EvictionPolicy::Lazy)));
        registry.register_eviction(Arc::new(PolicyEvictionFactory(EvictionPolicy::Eager)));
        registry
    }

    /// Registers (or replaces) a prefetcher factory under its name.
    pub fn register_prefetcher(&mut self, factory: Arc<dyn PrefetcherFactory>) -> &mut Self {
        self.prefetchers.insert(factory.name().to_string(), factory);
        self
    }

    /// Registers (or replaces) a data-path factory under its name.
    pub fn register_data_path(&mut self, factory: Arc<dyn DataPathFactory>) -> &mut Self {
        self.data_paths.insert(factory.name().to_string(), factory);
        self
    }

    /// Registers (or replaces) an eviction factory under its name.
    pub fn register_eviction(&mut self, factory: Arc<dyn EvictionFactory>) -> &mut Self {
        self.evictions.insert(factory.name().to_string(), factory);
        self
    }

    /// Looks up a prefetcher factory by name.
    pub fn prefetcher(&self, name: &str) -> Result<Arc<dyn PrefetcherFactory>, ConfigError> {
        self.prefetchers
            .get(name)
            .cloned()
            .ok_or_else(|| ConfigError::UnknownComponent {
                role: "prefetcher",
                name: name.to_string(),
            })
    }

    /// Looks up a data-path factory by name.
    pub fn data_path(&self, name: &str) -> Result<Arc<dyn DataPathFactory>, ConfigError> {
        self.data_paths
            .get(name)
            .cloned()
            .ok_or_else(|| ConfigError::UnknownComponent {
                role: "data-path",
                name: name.to_string(),
            })
    }

    /// Looks up an eviction factory by name.
    pub fn eviction(&self, name: &str) -> Result<Arc<dyn EvictionFactory>, ConfigError> {
        self.evictions
            .get(name)
            .cloned()
            .ok_or_else(|| ConfigError::UnknownComponent {
                role: "eviction",
                name: name.to_string(),
            })
    }

    /// Registered prefetcher names, sorted.
    pub fn prefetcher_names(&self) -> Vec<&str> {
        self.prefetchers.keys().map(String::as_str).collect()
    }

    /// Registered data-path names, sorted.
    pub fn data_path_names(&self) -> Vec<&str> {
        self.data_paths.keys().map(String::as_str).collect()
    }

    /// Registered eviction-policy names, sorted.
    pub fn eviction_names(&self) -> Vec<&str> {
        self.evictions.keys().map(String::as_str).collect()
    }
}

/// The three factories a simulator run uses, resolved from a config plus any
/// builder overrides. Produced by [`crate::SimConfigBuilder::build_setup`];
/// plain configs resolve to the built-ins.
#[derive(Debug, Clone)]
pub struct ResolvedComponents {
    /// Prefetcher factory (one instance built per process under isolation).
    pub prefetcher: Arc<dyn PrefetcherFactory>,
    /// Data-path factory.
    pub data_path: Arc<dyn DataPathFactory>,
    /// Eviction-policy factory.
    pub eviction: Arc<dyn EvictionFactory>,
}

impl ResolvedComponents {
    /// The built-in components a plain [`SimConfig`] selects via its enums.
    pub fn builtin_for(config: &SimConfig) -> Self {
        ResolvedComponents {
            prefetcher: Arc::new(KindPrefetcherFactory(config.prefetcher)),
            data_path: match config.data_path {
                DataPathKind::LinuxDefault => Arc::new(LegacyDataPathFactory),
                DataPathKind::Leap => Arc::new(LeanDataPathFactory),
            },
            eviction: Arc::new(PolicyEvictionFactory(config.eviction)),
        }
    }

    /// A `data-path/prefetcher/eviction @fraction%` label; identical to
    /// [`SimConfig::label`] when only built-ins are in play.
    pub fn label(&self, config: &SimConfig) -> String {
        format!(
            "{}/{}/{} @{:.0}%",
            self.data_path.name(),
            self.prefetcher.name(),
            self.eviction.name(),
            config.memory_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_contains_every_enum_variant() {
        let registry = ComponentRegistry::builtin();
        assert_eq!(
            registry.prefetcher_names(),
            vec!["Leap", "Next-N-Line", "No-Prefetch", "Read-Ahead", "Stride"]
        );
        assert_eq!(registry.data_path_names(), vec!["leap", "linux-default"]);
        assert_eq!(registry.eviction_names(), vec!["eager", "lazy"]);
    }

    #[test]
    fn unknown_names_error_with_role() {
        let registry = ComponentRegistry::builtin();
        assert_eq!(
            registry.prefetcher("oracle").unwrap_err(),
            ConfigError::UnknownComponent {
                role: "prefetcher",
                name: "oracle".into()
            }
        );
        assert!(registry.data_path("quantum-tunnel").is_err());
        assert!(registry.eviction("clairvoyant").is_err());
    }

    #[test]
    fn builtin_factories_build_their_kind() {
        let config = SimConfig::leap_defaults();
        let registry = ComponentRegistry::builtin();
        let factory = registry.prefetcher("Leap").unwrap();
        let prefetcher = factory.build(&config);
        assert_eq!(prefetcher.name(), "Leap");
        let eviction = registry.eviction("eager").unwrap().build(&config);
        assert!(eviction.frees_on_hit());
        let lazy = registry.eviction("lazy").unwrap().build(&config);
        assert!(!lazy.frees_on_hit());
    }

    #[test]
    fn resolved_components_label_matches_config_label() {
        let config = SimConfig::leap_defaults();
        let resolved = ResolvedComponents::builtin_for(&config);
        assert_eq!(resolved.label(&config), config.label());
        let linux = SimConfig::linux_defaults();
        let resolved = ResolvedComponents::builtin_for(&linux);
        assert_eq!(resolved.label(&linux), linux.label());
    }

    #[test]
    fn data_path_factories_honour_latency_overrides() {
        use leap_sim_core::Nanos;
        let mut config = SimConfig::linux_defaults();
        config.backend_read_latency = Some(Nanos::from_micros(1));
        config.backend_write_latency = Some(Nanos::from_micros(2));
        let mut rng = DetRng::seed_from(7);
        // Builds succeed and stay deterministic; the latency effect itself is
        // asserted end-to-end in the builder tests.
        let _legacy = LegacyDataPathFactory.build(&config, &mut rng);
        let mut config = SimConfig::leap_defaults();
        config.backend_read_latency = Some(Nanos::from_micros(1));
        let _lean = LeanDataPathFactory.build(&config, &mut rng);
    }
}
