//! The validated configuration builder.
//!
//! [`SimConfigBuilder`] replaces the old ad-hoc `with_*` copy-setters:
//! every knob has a setter, and [`SimConfigBuilder::build`] validates the
//! combination, returning `Result<SimConfig, ConfigError>` instead of
//! silently clamping or letting nonsense configurations produce nonsense
//! results. Custom components (a third-party prefetcher, data path, or
//! eviction policy) are injected with the `custom_*` setters or selected by
//! registry name with the `*_named` setters; [`SimConfigBuilder::build_setup`]
//! then yields a [`SimSetup`] from which simulators are constructed.

use crate::components::{ComponentRegistry, ResolvedComponents};
use crate::components::{DataPathFactory, EvictionFactory, PrefetcherFactory};
use crate::config::{DataPathKind, EvictionPolicy, ReplayMode, SimConfig};
use crate::error::ConfigError;
use crate::vfs::VfsSimulator;
use crate::vmm::VmmSimulator;
use leap_prefetcher::PrefetcherKind;
use leap_remote::BackendKind;
use leap_sim_core::Nanos;
use std::sync::Arc;

/// Builder for [`SimConfig`] with validation at [`build`] time.
///
/// [`build`]: SimConfigBuilder::build
///
/// # Examples
///
/// ```
/// use leap::prelude::*;
///
/// let config = SimConfig::builder()
///     .memory_fraction(0.5)
///     .history_size(64)
///     .max_prefetch_window(16)
///     .cores(16)
///     .seed(7)
///     .build()
///     .expect("a valid configuration");
/// assert_eq!(config.history_size, 64);
///
/// // Invalid combinations are rejected with the offending knob:
/// let err = SimConfig::builder().memory_fraction(1.5).build().unwrap_err();
/// assert!(matches!(err, ConfigError::MemoryFractionOutOfRange(_)));
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
    registry: ComponentRegistry,
    prefetcher_override: Option<Arc<dyn PrefetcherFactory>>,
    data_path_override: Option<Arc<dyn DataPathFactory>>,
    eviction_override: Option<Arc<dyn EvictionFactory>>,
    named_prefetcher: Option<String>,
    named_data_path: Option<String>,
    named_eviction: Option<String>,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder::from_config(SimConfig::default())
    }
}

impl SimConfigBuilder {
    /// Starts from an existing configuration.
    pub fn from_config(config: SimConfig) -> Self {
        SimConfigBuilder {
            config,
            registry: ComponentRegistry::builtin(),
            prefetcher_override: None,
            data_path_override: None,
            eviction_override: None,
            named_prefetcher: None,
            named_data_path: None,
            named_eviction: None,
        }
    }

    /// Selects a built-in prefetching algorithm.
    pub fn prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.config.prefetcher = kind;
        self.named_prefetcher = None;
        self.prefetcher_override = None;
        self
    }

    /// Selects a built-in data path.
    pub fn data_path(mut self, kind: DataPathKind) -> Self {
        self.config.data_path = kind;
        self.named_data_path = None;
        self.data_path_override = None;
        self
    }

    /// Selects the backing store.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.config.backend = kind;
        self
    }

    /// Selects a built-in eviction policy.
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        self.config.eviction = policy;
        self.named_eviction = None;
        self.eviction_override = None;
        self
    }

    /// Sets the local memory limit as a fraction of the working set.
    /// Validated to lie in `(0, 1]` at build time.
    pub fn memory_fraction(mut self, fraction: f64) -> Self {
        self.config.memory_fraction = fraction;
        self
    }

    /// Sets the prefetch-cache capacity in pages (`u64::MAX` = unbounded).
    pub fn prefetch_cache_pages(mut self, pages: u64) -> Self {
        self.config.prefetch_cache_pages = pages;
        self
    }

    /// Sets `Hsize`, the access-history length. Validated nonzero.
    pub fn history_size(mut self, size: usize) -> Self {
        self.config.history_size = size;
        self
    }

    /// Sets `PWsize_max`, the maximum prefetch window. Validated nonzero.
    pub fn max_prefetch_window(mut self, window: usize) -> Self {
        self.config.max_prefetch_window = window;
        self
    }

    /// Sets the number of CPU cores (per-core dispatch queues). Validated
    /// nonzero.
    pub fn cores(mut self, cores: usize) -> Self {
        self.config.cores = cores;
        self
    }

    /// Sets the scheduler time slice used by multi-process replays
    /// ([`crate::Simulator::run_multi`]). Validated nonzero.
    ///
    /// # Examples
    ///
    /// ```
    /// use leap::prelude::*;
    /// use leap_sim_core::Nanos;
    ///
    /// // Two processes time-shared on 2 cores with a 200 µs quantum.
    /// let traces = vec![
    ///     leap_workloads::sequential_trace(2 * leap_sim_core::units::MIB, 1),
    ///     leap_workloads::stride_trace(2 * leap_sim_core::units::MIB, 10, 1),
    /// ];
    /// let sim = SimConfig::builder()
    ///     .cores(2)
    ///     .sched_quantum(Nanos::from_micros(200))
    ///     .seed(7)
    ///     .build_vmm()?;
    /// let result = sim.run_multi(&traces);
    /// assert_eq!(result.total_accesses, 1024);
    /// # Ok::<(), leap::ConfigError>(())
    /// ```
    pub fn sched_quantum(mut self, quantum: Nanos) -> Self {
        self.config.sched_quantum = quantum;
        self
    }

    /// Sets the simulated cost charged for one scheduler context switch in a
    /// multi-process replay. Defaults to [`crate::sched::CONTEXT_SWITCH`]
    /// (2 µs); validated against
    /// [`MAX_CONTEXT_SWITCH`](crate::config::MAX_CONTEXT_SWITCH) so a unit
    /// mistake (e.g. milliseconds passed as nanoseconds) fails at build time.
    ///
    /// # Examples
    ///
    /// ```
    /// use leap::prelude::*;
    /// use leap_sim_core::Nanos;
    ///
    /// // Context-switch sensitivity ablation: a free switch vs a 20 µs one.
    /// let free = SimConfig::builder()
    ///     .context_switch_cost(Nanos::ZERO)
    ///     .build()?;
    /// assert_eq!(free.context_switch_cost, Nanos::ZERO);
    /// let err = SimConfig::builder()
    ///     .context_switch_cost(Nanos::from_secs(1))
    ///     .build()
    ///     .unwrap_err();
    /// assert!(matches!(err, ConfigError::ContextSwitchTooLarge { .. }));
    /// # Ok::<(), leap::ConfigError>(())
    /// ```
    pub fn context_switch_cost(mut self, cost: Nanos) -> Self {
        self.config.context_switch_cost = cost;
        self
    }

    /// Selects how multi-process replays execute: serially on one OS thread
    /// (the reference) or with one OS thread per core shard
    /// ([`ReplayMode::Threaded`]). Simulated results are bit-identical in
    /// both modes; only wall-clock time differs.
    pub fn replay_mode(mut self, mode: ReplayMode) -> Self {
        self.config.replay_mode = mode;
        self
    }

    /// Sets per-process prefetcher isolation.
    pub fn per_process_isolation(mut self, isolated: bool) -> Self {
        self.config.per_process_isolation = isolated;
        self
    }

    /// Sets the in-flight budget of the per-shard async I/O pipeline
    /// ([`crate::AsyncPipeline`]). Validated nonzero.
    ///
    /// `usize::MAX` (the default) keeps the legacy free-overlap accounting:
    /// asynchronous prefetch reads and write-backs never stall the faulting
    /// access. Finite depths bound the asynchrony; depth 1 bills every async
    /// I/O synchronously.
    ///
    /// # Examples
    ///
    /// ```
    /// use leap::prelude::*;
    ///
    /// let config = SimConfig::builder().async_depth(8).build()?;
    /// assert_eq!(config.async_depth, 8);
    /// let err = SimConfig::builder().async_depth(0).build().unwrap_err();
    /// assert!(matches!(err, ConfigError::ZeroAsyncDepth));
    /// # Ok::<(), leap::ConfigError>(())
    /// ```
    pub fn async_depth(mut self, depth: usize) -> Self {
        self.config.async_depth = depth;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Overrides the backend's 4 KB read latency with a constant. Validated
    /// nonzero.
    pub fn backend_read_latency(mut self, latency: Nanos) -> Self {
        self.config.backend_read_latency = Some(latency);
        self
    }

    /// Overrides the backend's 4 KB write latency with a constant. Validated
    /// nonzero.
    pub fn backend_write_latency(mut self, latency: Nanos) -> Self {
        self.config.backend_write_latency = Some(latency);
        self
    }

    /// Installs a fault-injection spec for the remote tier. The spec is
    /// expanded into a concrete [`leap_remote::FaultPlan`] from
    /// `(seed, spec)` when the data path is built, so the same seed always
    /// schedules the same faults in either replay mode. Validated for
    /// consistency at build time; [`FaultSpec::none`] (the default) keeps
    /// the fabric healthy.
    ///
    /// [`FaultSpec::none`]: leap_remote::FaultSpec::none
    pub fn fault_plan(mut self, spec: leap_remote::FaultSpec) -> Self {
        self.config.fault = spec;
        self
    }

    /// Installs a request-recovery policy for the remote tier: virtual-time
    /// deadlines with retry/backoff, hedged reads, and fail-fast rerouting
    /// around link partitions. Recovery draws from its own salted RNG stream
    /// (`seed ^ RECOVERY_SALT`), so enabling it never perturbs the fault
    /// schedule or the workload; [`RecoveryPolicy::none`] (the default)
    /// keeps runs byte-identical to a build without the layer. Validated
    /// for consistency at build time.
    ///
    /// [`RecoveryPolicy::none`]: leap_remote::RecoveryPolicy::none
    pub fn recovery_policy(mut self, policy: leap_remote::RecoveryPolicy) -> Self {
        self.config.recovery = policy;
        self
    }

    /// Replaces the component registry consulted by the `*_named` selectors
    /// (defaults to [`ComponentRegistry::builtin`]).
    pub fn registry(mut self, registry: ComponentRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Injects a custom prefetcher factory, bypassing the registry. One
    /// instance is built per process under per-process isolation.
    pub fn custom_prefetcher(mut self, factory: impl PrefetcherFactory + 'static) -> Self {
        self.prefetcher_override = Some(Arc::new(factory));
        self.named_prefetcher = None;
        self
    }

    /// Injects a custom data-path factory, bypassing the registry.
    pub fn custom_data_path(mut self, factory: impl DataPathFactory + 'static) -> Self {
        self.data_path_override = Some(Arc::new(factory));
        self.named_data_path = None;
        self
    }

    /// Injects a custom eviction factory, bypassing the registry.
    pub fn custom_eviction(mut self, factory: impl EvictionFactory + 'static) -> Self {
        self.eviction_override = Some(Arc::new(factory));
        self.named_eviction = None;
        self
    }

    /// Selects a prefetcher from the registry by name (resolved and
    /// validated at [`SimConfigBuilder::build_setup`] time).
    pub fn prefetcher_named(mut self, name: impl Into<String>) -> Self {
        self.named_prefetcher = Some(name.into());
        self.prefetcher_override = None;
        self
    }

    /// Selects a data path from the registry by name.
    pub fn data_path_named(mut self, name: impl Into<String>) -> Self {
        self.named_data_path = Some(name.into());
        self.data_path_override = None;
        self
    }

    /// Selects an eviction policy from the registry by name.
    pub fn eviction_named(mut self, name: impl Into<String>) -> Self {
        self.named_eviction = Some(name.into());
        self.eviction_override = None;
        self
    }

    /// Validates and returns the plain-data configuration.
    ///
    /// Component injections/selections are *not* carried by [`SimConfig`]
    /// (it stays `Copy` serializable data), so calling `build` while one is
    /// pending returns [`ConfigError::ComponentsRequireSetup`] instead of
    /// silently dropping it; use [`SimConfigBuilder::build_setup`] (or
    /// `build_vmm` / `build_vfs`) when custom components are in play.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.config.validate()?;
        if self.prefetcher_override.is_some() || self.named_prefetcher.is_some() {
            return Err(ConfigError::ComponentsRequireSetup { role: "prefetcher" });
        }
        if self.data_path_override.is_some() || self.named_data_path.is_some() {
            return Err(ConfigError::ComponentsRequireSetup { role: "data-path" });
        }
        if self.eviction_override.is_some() || self.named_eviction.is_some() {
            return Err(ConfigError::ComponentsRequireSetup { role: "eviction" });
        }
        Ok(self.config)
    }

    /// Validates the configuration and resolves the three components,
    /// returning a [`SimSetup`] from which simulators are constructed.
    pub fn build_setup(self) -> Result<SimSetup, ConfigError> {
        self.config.validate()?;
        let mut components = ResolvedComponents::builtin_for(&self.config);
        if let Some(name) = &self.named_prefetcher {
            components.prefetcher = self.registry.prefetcher(name)?;
        }
        if let Some(name) = &self.named_data_path {
            components.data_path = self.registry.data_path(name)?;
        }
        if let Some(name) = &self.named_eviction {
            components.eviction = self.registry.eviction(name)?;
        }
        if let Some(factory) = self.prefetcher_override {
            components.prefetcher = factory;
        }
        if let Some(factory) = self.data_path_override {
            components.data_path = factory;
        }
        if let Some(factory) = self.eviction_override {
            components.eviction = factory;
        }
        Ok(SimSetup {
            config: self.config,
            components,
        })
    }

    /// Shorthand for `build_setup()?.vmm()`.
    pub fn build_vmm(self) -> Result<VmmSimulator, ConfigError> {
        Ok(self.build_setup()?.vmm())
    }

    /// Shorthand for `build_setup()?.vfs()`.
    pub fn build_vfs(self) -> Result<VfsSimulator, ConfigError> {
        Ok(self.build_setup()?.vfs())
    }
}

/// A validated configuration plus its resolved components, ready to
/// construct simulators.
///
/// Cheap to clone (components are shared factories), so one setup can spawn
/// many simulator instances for repeated runs.
#[derive(Debug, Clone)]
pub struct SimSetup {
    /// The validated plain-data configuration.
    pub config: SimConfig,
    components: ResolvedComponents,
}

impl SimSetup {
    /// Resolves a plain configuration against the built-in components.
    ///
    /// Fails only if `config` itself is invalid — enum-selected components
    /// always resolve.
    pub fn from_config(config: SimConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(SimSetup {
            components: ResolvedComponents::builtin_for(&config),
            config,
        })
    }

    /// The resolved component factories.
    pub fn components(&self) -> &ResolvedComponents {
        &self.components
    }

    /// The run label (component names + memory fraction).
    pub fn label(&self) -> String {
        self.components.label(&self.config)
    }

    /// Constructs a disaggregated-VMM simulator from this setup.
    pub fn vmm(&self) -> VmmSimulator {
        VmmSimulator::from_setup(self)
    }

    /// Constructs a disaggregated-VFS simulator from this setup.
    pub fn vfs(&self) -> VfsSimulator {
        VfsSimulator::from_setup(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_every_knob() {
        let config = SimConfig::builder()
            .prefetcher(PrefetcherKind::Stride)
            .data_path(DataPathKind::LinuxDefault)
            .backend(BackendKind::Hdd)
            .eviction(EvictionPolicy::Lazy)
            .memory_fraction(0.25)
            .prefetch_cache_pages(256)
            .history_size(16)
            .max_prefetch_window(4)
            .cores(4)
            .sched_quantum(Nanos::from_micros(750))
            .per_process_isolation(false)
            .async_depth(16)
            .seed(99)
            .backend_read_latency(Nanos::from_micros(3))
            .backend_write_latency(Nanos::from_micros(5))
            .build()
            .unwrap();
        assert_eq!(config.prefetcher, PrefetcherKind::Stride);
        assert_eq!(config.data_path, DataPathKind::LinuxDefault);
        assert_eq!(config.backend, BackendKind::Hdd);
        assert_eq!(config.eviction, EvictionPolicy::Lazy);
        assert_eq!(config.memory_fraction, 0.25);
        assert_eq!(config.prefetch_cache_pages, 256);
        assert_eq!(config.history_size, 16);
        assert_eq!(config.max_prefetch_window, 4);
        assert_eq!(config.cores, 4);
        assert_eq!(config.sched_quantum, Nanos::from_micros(750));
        assert!(!config.per_process_isolation);
        assert_eq!(config.async_depth, 16);
        assert_eq!(config.seed, 99);
        assert_eq!(config.backend_read_latency, Some(Nanos::from_micros(3)));
        assert_eq!(config.backend_write_latency, Some(Nanos::from_micros(5)));
    }

    #[test]
    fn every_invalid_knob_gets_its_own_error() {
        assert!(matches!(
            SimConfig::builder().memory_fraction(0.0).build(),
            Err(ConfigError::MemoryFractionOutOfRange(_))
        ));
        assert!(matches!(
            SimConfig::builder().memory_fraction(f64::NAN).build(),
            Err(ConfigError::MemoryFractionOutOfRange(_))
        ));
        assert!(matches!(
            SimConfig::builder().history_size(0).build(),
            Err(ConfigError::ZeroHistorySize)
        ));
        assert!(matches!(
            SimConfig::builder().max_prefetch_window(0).build(),
            Err(ConfigError::ZeroPrefetchWindow)
        ));
        assert!(matches!(
            SimConfig::builder().cores(0).build(),
            Err(ConfigError::ZeroCores)
        ));
        assert!(matches!(
            SimConfig::builder().sched_quantum(Nanos::ZERO).build(),
            Err(ConfigError::ZeroQuantum)
        ));
        assert!(matches!(
            SimConfig::builder().prefetch_cache_pages(0).build(),
            Err(ConfigError::ZeroPrefetchCache)
        ));
        assert!(matches!(
            SimConfig::builder().async_depth(0).build(),
            Err(ConfigError::ZeroAsyncDepth)
        ));
        assert!(matches!(
            SimConfig::builder()
                .prefetch_cache_pages(4)
                .max_prefetch_window(8)
                .build(),
            Err(ConfigError::CacheSmallerThanWindow {
                cache_pages: 4,
                window: 8
            })
        ));
        assert!(matches!(
            SimConfig::builder()
                .backend_read_latency(Nanos::ZERO)
                .build(),
            Err(ConfigError::ZeroBackendLatency { which: "read" })
        ));
        assert!(matches!(
            SimConfig::builder()
                .backend_write_latency(Nanos::ZERO)
                .build(),
            Err(ConfigError::ZeroBackendLatency { which: "write" })
        ));
    }

    #[test]
    fn named_selection_resolves_through_the_registry() {
        let setup = SimConfig::builder()
            .prefetcher_named("Stride")
            .data_path_named("linux-default")
            .eviction_named("lazy")
            .build_setup()
            .unwrap();
        assert_eq!(setup.components().prefetcher.name(), "Stride");
        assert_eq!(setup.components().data_path.name(), "linux-default");
        assert_eq!(setup.components().eviction.name(), "lazy");

        let err = SimConfig::builder()
            .prefetcher_named("oracle")
            .build_setup()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::UnknownComponent {
                role: "prefetcher",
                name: "oracle".into()
            }
        );
    }

    #[test]
    fn plain_build_rejects_pending_component_selections() {
        #[derive(Debug)]
        struct Fixed;
        impl crate::components::PrefetcherFactory for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn build(&self, config: &SimConfig) -> Box<dyn leap_prefetcher::Prefetcher> {
                crate::components::build_prefetcher(PrefetcherKind::None, 1, config.cores)
            }
        }
        // A pending custom factory cannot ride in plain SimConfig data, so
        // build() errors instead of silently dropping it...
        assert!(matches!(
            SimConfig::builder().custom_prefetcher(Fixed).build(),
            Err(ConfigError::ComponentsRequireSetup { role: "prefetcher" })
        ));
        assert!(matches!(
            SimConfig::builder().eviction_named("lazy").build(),
            Err(ConfigError::ComponentsRequireSetup { role: "eviction" })
        ));
        // ...while build_setup() carries it through.
        let setup = SimConfig::builder()
            .custom_prefetcher(Fixed)
            .build_setup()
            .unwrap();
        assert_eq!(setup.components().prefetcher.name(), "fixed");
    }

    #[test]
    fn setup_label_matches_config_label_for_builtins() {
        let setup = SimSetup::from_config(SimConfig::leap_defaults()).unwrap();
        assert_eq!(setup.label(), setup.config.label());
    }

    #[test]
    fn invalid_configs_cannot_become_setups() {
        let mut config = SimConfig::leap_defaults();
        config.cores = 0;
        assert!(matches!(
            SimSetup::from_config(config),
            Err(ConfigError::ZeroCores)
        ));
    }
}
