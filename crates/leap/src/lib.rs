//! Leap: prefetching and a lean data path for disaggregated remote memory.
//!
//! This crate is the core library of the reproduction of *Effectively
//! Prefetching Remote Memory with Leap* (USENIX ATC 2020). It composes the
//! substrate crates — memory management (`leap-mem`), remote memory
//! (`leap-remote`), data paths (`leap-datapath`), prefetchers
//! (`leap-prefetcher`), eviction policies (`leap-eviction`), workloads
//! (`leap-workloads`) and metrics (`leap-metrics`) — into two front-ends
//! behind one [`Simulator`] trait:
//!
//! - [`vmm::VmmSimulator`]: disaggregated virtual memory management
//!   (Infiniswap-style remote paging), the configuration most of the paper's
//!   evaluation uses.
//! - [`vfs::VfsSimulator`]: disaggregated VFS (Remote-Regions-style remote
//!   file access).
//!
//! Both are driven by [`leap_workloads::AccessTrace`]s and produce a
//! [`result::RunResult`] with the latency distributions, cache statistics,
//! prefetch effectiveness, and completion time / throughput numbers the
//! paper's figures report. For streaming consumers, a [`session::Session`]
//! drives either simulator access by access, emitting a
//! [`session::FaultEvent`] per access to [`session::Observer`] hooks.
//!
//! Multi-process replays ([`session::Simulator::run_multi`]) time-share the
//! processes over [`SimConfig::cores`] cores with the deterministic
//! scheduler in [`sched`]; the VMM front-end shards its swap space, prefetch
//! cache, eviction state, and prefetcher trends per core, and every
//! [`session::FaultEvent`] carries the core it ran on so per-core streams
//! (Figure 13 scale-up curves) come straight out of the observer API.
//!
//! # Quick start
//!
//! Configurations are built with the validated [`SimConfig::builder`]
//! (invalid combinations return a [`ConfigError`] at
//! [`SimConfigBuilder::build`] time):
//!
//! ```
//! use leap::prelude::*;
//! use leap_sim_core::units::MIB;
//!
//! // A Stride-10 microbenchmark over 8 MiB with 50 % local memory.
//! let trace = leap_workloads::stride_trace(8 * MIB, 10, 2);
//! let config = SimConfig::builder()
//!     .memory_fraction(0.5)
//!     .seed(7)
//!     .build()
//!     .expect("valid configuration");
//! let result = VmmSimulator::new(config).run(&trace);
//! assert!(result.remote_accesses() > 0);
//! // The Leap configuration serves most remote accesses from the prefetch cache.
//! assert!(result.cache_stats.hit_ratio() > 0.5);
//! ```
//!
//! # Plugging in components
//!
//! The three mechanisms the paper composes — prefetcher, data path, eviction
//! policy — are open: implement [`components::PrefetcherFactory`] (or the
//! data-path/eviction equivalents) outside this crate and inject it with
//! [`SimConfigBuilder::custom_prefetcher`], or register it in a
//! [`components::ComponentRegistry`] and select it by name with
//! [`SimConfigBuilder::prefetcher_named`]. The built-in enums
//! ([`leap_prefetcher::PrefetcherKind`], [`DataPathKind`],
//! [`EvictionPolicy`]) are themselves just registry entries.

#![warn(missing_docs)]

pub mod builder;
pub mod components;
pub mod config;
mod engine;
pub mod error;
pub mod parallel;
pub mod pipeline;
pub mod recorder;
pub mod result;
pub mod sched;
pub mod session;
pub mod stage_timing;
pub mod tracker;
pub mod vfs;
pub mod vmm;

pub use builder::{SimConfigBuilder, SimSetup};
pub use components::{
    ComponentRegistry, DataPathFactory, EvictionFactory, PrefetcherFactory, ResolvedComponents,
};
pub use config::{DataPathKind, EvictionPolicy, ReplayMode, SimConfig};
pub use error::ConfigError;
pub use pipeline::{AsyncPipeline, IoKind, PipelineStats, SubmitOutcome};
pub use recorder::TraceRecorder;
pub use result::RunResult;
pub use sched::{CoreScheduler, ScheduledSlot};
pub use session::{
    AccessOutcome, CoreActivity, CoreStats, EventLog, EventRing, FaultEvent, HistogramObserver,
    Observer, OutcomeCounts, Session, Simulator,
};
pub use tracker::PageAccessTracker;
pub use vfs::VfsSimulator;
pub use vmm::VmmSimulator;

pub use leap_remote::{
    FaultInjectionStats, FaultJsonError, FaultPlan, FaultSpec, RecoveryPolicy, RecoveryStats,
    TenantRecovery,
};

/// Commonly used items, re-exported for examples and experiment binaries.
pub mod prelude {
    pub use crate::builder::{SimConfigBuilder, SimSetup};
    pub use crate::components::{
        ComponentRegistry, DataPathFactory, EvictionFactory, PrefetcherFactory,
    };
    pub use crate::config::{DataPathKind, EvictionPolicy, ReplayMode, SimConfig};
    pub use crate::error::ConfigError;
    pub use crate::pipeline::{AsyncPipeline, IoKind, PipelineStats, SubmitOutcome};
    pub use crate::recorder::TraceRecorder;
    pub use crate::result::RunResult;
    pub use crate::sched::CoreScheduler;
    pub use crate::session::{
        AccessOutcome, CoreActivity, CoreStats, EventLog, EventRing, FaultEvent, HistogramObserver,
        Observer, OutcomeCounts, Session, Simulator,
    };
    pub use crate::tracker::PageAccessTracker;
    pub use crate::vfs::VfsSimulator;
    pub use crate::vmm::VmmSimulator;
    pub use leap_prefetcher::PrefetcherKind;
    pub use leap_remote::{
        BackendKind, FaultInjectionStats, FaultJsonError, FaultPlan, FaultSpec, RecoveryPolicy,
        RecoveryStats, TenantRecovery,
    };
    pub use leap_sim_core::Nanos;
    pub use leap_workloads::{AppKind, AppModel};
}
