//! The disaggregated-VMM front-end.
//!
//! [`VmmSimulator`] replays page-granular access traces against a model of
//! the Linux paging machinery backed by remote memory (or a local disk):
//! per-process page tables, a cgroup-style resident-memory limit, the shared
//! swap space, the swap/prefetch cache, a prefetcher, an eviction policy, and
//! one of the data paths. The cross-cutting machinery (clock, cache,
//! tracker, eviction bookkeeping, result accumulation) lives in the shared
//! engine core; this file models only what is VMM-specific — page tables,
//! the swap space, and cgroup limits.
//!
//! ## What happens on an access
//!
//! 1. The process "computes" for the access's compute cost.
//! 2. If the page is resident, the access costs a local DRAM reference.
//! 3. If the page has never been touched, it is a demand-zero minor fault:
//!    allocate a frame (evicting under memory pressure) and map it.
//! 4. Otherwise the page is swapped out — a *remote page access*:
//!    - a swap-cache hit costs the cache lookup plus the MMU update; under
//!      Leap's eager policy the cache entry is freed immediately;
//!    - a miss goes down the configured data path (legacy block layer or
//!      Leap's lean path) to the backend, then the prefetcher is consulted
//!      and its candidates are read asynchronously into the cache.
//! 5. Newly resident pages may push the process over its memory limit, in
//!    which case the least recently used resident pages are swapped out
//!    (write-back modelled asynchronously) and, under the lazy policy, the
//!    reclaimer's scan time is charged as allocation wait.

use crate::builder::SimSetup;
use crate::config::SimConfig;
use crate::engine::EngineCore;
use crate::parallel::{self, CoreWorker};
use crate::result::RunResult;
use crate::sched::CoreScheduler;
use crate::session::{AccessOutcome, FaultEvent, Observer, Simulator};
use leap_mem::{
    FramePool, LruList, MemoryLimit, PageState, PageTable, Pid, ShardedSwap, SwapSlot, VirtPage,
};
use leap_prefetcher::PageAddr;
use leap_sim_core::hash::FxHashMap;
use leap_sim_core::units::PAGE_SIZE;
use leap_sim_core::Nanos;
use leap_workloads::{Access, AccessTrace};

/// Latency of a local DRAM access (page already resident and mapped).
const LOCAL_ACCESS: Nanos = Nanos(100);
/// Cost of a demand-zero minor fault (allocate + zero + map).
const MINOR_FAULT: Nanos = Nanos(1_500);
/// Cost of looking up the swap cache on the fault path.
const CACHE_LOOKUP: Nanos = Nanos(270);
/// Cost of mapping a page that is already present in the swap cache (no I/O,
/// no new frame: just the PTE update and bookkeeping).
const FAST_MAP: Nanos = Nanos(400);
/// Fixed software cost of swapping one page out (allocating the slot,
/// unmapping, queueing the write-back, which itself completes asynchronously).
const SWAP_OUT_OVERHEAD: Nanos = Nanos(1_000);
/// Total swap-slot capacity; large enough to never be the binding
/// constraint, halved so per-shard region arithmetic cannot overflow.
const SWAP_CAPACITY: u64 = u64::MAX / 2;

/// Per-process paging state. The process's cgroup-style memory budget lives
/// in the engine's tenant ledger ([`EngineCore::set_tenant_limit`]), not
/// here, so eviction accounting is enforced where evictions are booked.
#[derive(Debug)]
struct ProcessState {
    page_table: PageTable,
    resident_lru: LruList<VirtPage>,
}

/// The disaggregated-VMM simulator.
///
/// See the crate-level example for typical usage; drive it through the
/// [`Simulator`] trait (`run`, `run_multi`), the inherent
/// [`VmmSimulator::run_prepopulated`], or stepwise through a
/// [`crate::Session`].
#[derive(Debug)]
pub struct VmmSimulator {
    engine: EngineCore,
    processes: FxHashMap<Pid, ProcessState>,
    frames: FramePool,
    swap: ShardedSwap,
    /// Reusable scratch for span-batched prefetch admission: the span's
    /// swap slots, their owners (batch-probed), and the kept owners'
    /// pids. Allocated once; the fault hot path never grows them past the
    /// first few faults.
    span_slots: Vec<SwapSlot>,
    span_owners: Vec<Option<(Pid, VirtPage)>>,
    span_pids: Vec<Pid>,
    span_pages: Vec<VirtPage>,
    span_states: Vec<PageState>,
    /// Explicit per-tenant budget overrides (`pid.0` → resident pages),
    /// taking precedence over the `memory_fraction`-derived limit when the
    /// process registers. Set by the service layer's admission control.
    tenant_budget_pages: FxHashMap<u32, u64>,
    /// When set, scheduled multi-process replays prepopulate each process's
    /// working set (address order, metrics discarded) before the measured
    /// run, like [`crate::session::run_prepopulated`] does for single
    /// traces. See [`VmmSimulator::set_prepopulate_multi`].
    prepopulate_multi: bool,
}

impl VmmSimulator {
    /// Creates a simulator for the given configuration with the built-in
    /// components its enums select.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`SimConfig::validate`]); use
    /// [`SimConfig::builder`] to surface the error instead.
    pub fn new(config: SimConfig) -> Self {
        let setup = SimSetup::from_config(config).expect("invalid SimConfig");
        VmmSimulator::from_setup(&setup)
    }

    /// Creates a simulator from a resolved setup (possibly carrying custom
    /// registry components).
    pub fn from_setup(setup: &SimSetup) -> Self {
        VmmSimulator {
            engine: EngineCore::new(setup, 0),
            processes: FxHashMap::default(),
            // The frame pool is sized lazily per-process via MemoryLimit; the
            // global pool just needs to be large enough to never be the
            // binding constraint. The swap space starts unsharded (one
            // region); a scheduled multi-core replay reshards it in
            // `prepare_multi`.
            frames: FramePool::new(u64::MAX / 2),
            swap: ShardedSwap::new(1, SWAP_CAPACITY),
            span_slots: Vec::new(),
            span_owners: Vec::new(),
            span_pids: Vec::new(),
            span_pages: Vec::new(),
            span_states: Vec::new(),
            tenant_budget_pages: FxHashMap::default(),
            prepopulate_multi: false,
        }
    }

    /// Makes every scheduled multi-process replay start from a prepopulated
    /// working set: each registered process's distinct pages are touched
    /// once in address order (allocation/initialisation phase, metrics
    /// discarded) before the measured accesses run.
    ///
    /// Prepopulation fixes the swap-slot layout to the address order — cold
    /// pages spill to swap in sorted page order, so a process's slot numbers
    /// follow its page ranks. That is the paper's microbenchmark methodology
    /// ([`Session::run_prepopulated`](crate::session::Session::run_prepopulated))
    /// extended to scheduled
    /// multi-process runs, and it is what lets offline-trained prefetchers
    /// (whose models are learned in page space) see the same delta structure
    /// in the slot-addressed fault stream they are consulted with.
    ///
    /// The prepopulation happens inside each shard worker's construction
    /// (or in [`Simulator::prepare_multi`] on the monolithic fallback), so
    /// Serial and Threaded replays observe bit-identical state.
    pub fn set_prepopulate_multi(&mut self, on: bool) {
        self.prepopulate_multi = on;
    }

    /// Overrides the resident-memory budget of process `pid` to `pages`
    /// pages, replacing the `memory_fraction`-derived default when the
    /// process registers (before the run starts). This is how the service
    /// layer's admission control gives each tenant its admitted budget.
    pub fn set_tenant_budget_pages(&mut self, pid: Pid, pages: u64) {
        self.tenant_budget_pages.insert(pid.0, pages);
    }

    /// Like [`Simulator::run`], but first touches the trace's working set
    /// once in virtual-address order without recording any metrics.
    ///
    /// This models the paper's microbenchmark methodology: the application
    /// allocates and initialises its working set (a sequential sweep, which
    /// also fixes the swap-slot layout to follow the address order), and only
    /// the subsequent pattern accesses are measured.
    pub fn run_prepopulated(mut self, trace: &AccessTrace) -> RunResult {
        self.prepare(std::slice::from_ref(trace));
        self.prepopulate(Pid(1), trace);
        for access in trace.iter() {
            self.step_access(Pid(1), *access);
        }
        Simulator::into_result(self)
    }

    fn register_process(&mut self, pid: Pid, working_set_pages: u64) {
        let limit = match self.tenant_budget_pages.get(&pid.0) {
            Some(&pages) => MemoryLimit::from_pages(pages),
            None => MemoryLimit::fraction_of(
                working_set_pages * PAGE_SIZE,
                self.engine.config.memory_fraction,
            ),
        };
        // Pre-size the per-process maps from the trace's working set (the
        // page table sees every touched page; the LRU at most the resident
        // limit), clamped so a degenerate trace cannot pre-allocate the
        // world: steady-state faults then never rehash either structure.
        let table_hint = working_set_pages.min(1 << 22) as usize;
        let lru_hint = limit.limit_pages().min(table_hint as u64) as usize;
        self.engine.set_tenant_limit(pid, limit);
        self.processes.insert(
            pid,
            ProcessState {
                page_table: PageTable::with_capacity(table_hint),
                resident_lru: LruList::with_capacity(lru_hint),
            },
        );
    }

    /// Handles an access to a swapped-out page (the remote page access
    /// path). Returns the charged latency, the outcome, and how many
    /// prefetches were issued.
    fn remote_access(
        &mut self,
        pid: Pid,
        page: VirtPage,
        slot: leap_mem::SwapSlot,
        is_write: bool,
    ) -> (Nanos, AccessOutcome, u32) {
        self.engine.result.remote_accesses += 1;
        self.engine.result.prefetch_stats.record_request();

        let mut latency;
        let mut prefetches_issued = 0u32;
        let outcome;
        let cache_hit = if let Some(entry) = self.engine.cache_hit(pid, slot) {
            // Swap-cache hit: the page's data is already in local DRAM, so
            // the access costs the cache lookup plus a fast page-table map —
            // sub-µs, as the paper reports for Leap up to the 85th percentile.
            latency = CACHE_LOOKUP.saturating_add(FAST_MAP);
            outcome = AccessOutcome::CacheHit {
                origin: entry.origin,
            };
            true
        } else {
            // Swap-cache miss: full data-path traversal, then consult the
            // prefetcher and issue its candidates asynchronously.
            self.engine.result.cache_stats.record_miss();
            let breakdown = self.engine.read_remote(slot.0);
            latency = breakdown.total();
            let decision = self.engine.prefetch_decision(pid, PageAddr(slot.0));
            prefetches_issued = self.issue_prefetches(decision.pages());
            // A bounded async depth can stall the faulting core while its
            // prefetch submissions wait for in-flight slots; charge that
            // stall here (it is zero at the default unbounded depth).
            latency = latency.saturating_add(self.engine.take_pending_stall());
            outcome = AccessOutcome::RemoteFetch;
            false
        };

        // The faulting page becomes resident. On a cache hit the data is
        // already in a local frame, so the cgroup charge is rebalanced by the
        // background reclaimer (no synchronous allocation wait); on a miss
        // the faulting process may have to wait for direct reclaim.
        if cache_hit {
            let _ = self.make_room(pid, 1);
        } else {
            let alloc_wait = self.make_room(pid, 1);
            latency = latency.saturating_add(alloc_wait);
        }
        self.swap.free(slot);
        self.map_in(pid, page, is_write);

        // Give the policy's background reclaimer (kswapd under the lazy
        // policy) a chance to run; its cost is *not* charged to this access
        // (it is a background thread) but the wait times it observes feed
        // Figure 4.
        self.engine.background_reclaim();

        (latency, outcome, prefetches_issued)
    }

    /// Reads the prefetch candidates into the swap cache (asynchronously
    /// with respect to the faulting access). Returns how many were issued.
    ///
    /// Span-batched: the candidate span's swap owners are probed in one
    /// routed pass ([`ShardedSwap::owners_span`]), the resulting keep-list
    /// is filtered against residency, and the surviving span is admitted
    /// through [`EngineCore::admit_prefetch_span`] — one shard route (and
    /// batched eviction/statistics bookkeeping) per span instead of per
    /// page. All pre-filters are read-only with respect to the state the
    /// admission loop mutates, so the outcome is identical to the
    /// historical per-candidate loop.
    fn issue_prefetches(&mut self, candidates: &[PageAddr]) -> u32 {
        if candidates.is_empty() {
            return 0;
        }
        self.span_slots.clear();
        self.span_slots
            .extend(candidates.iter().map(|c| SwapSlot(c.0)));
        self.span_owners.clear();
        self.span_owners.resize(self.span_slots.len(), None);
        // Only pages that are actually swapped out can be prefetched; the
        // batch probe routes the span to its owning swap region once.
        self.swap
            .owners_span(&self.span_slots, &mut self.span_owners);

        // Compact the span down to prefetchable candidates: swapped out and
        // not already resident in their owner's page table.
        //
        // Common case first: every owned slot belongs to one process (the
        // span follows one process's trend through its own swap region), so
        // the owner's page table answers the whole span in one batched
        // probe ([`PageTable::lookup_span`]) after a single process-map
        // lookup. Mixed-owner spans fall back to per-slot probes.
        self.span_pids.clear();
        let mut kept = 0usize;
        let mut single_owner: Option<Pid> = None;
        let mut mixed = false;
        for (pid, _) in self.span_owners.iter().flatten() {
            match single_owner {
                None => single_owner = Some(*pid),
                Some(p) if p != *pid => {
                    mixed = true;
                    break;
                }
                _ => {}
            }
        }
        match single_owner {
            Some(pid) if !mixed && self.processes.contains_key(&pid) => {
                self.span_pages.clear();
                self.span_pages.extend(
                    self.span_owners
                        .iter()
                        .filter_map(|o| o.map(|(_, page)| page)),
                );
                self.span_states.clear();
                self.span_states
                    .resize(self.span_pages.len(), PageState::Untouched);
                let process = self.processes.get(&pid).expect("checked above");
                process
                    .page_table
                    .lookup_span(&self.span_pages, &mut self.span_states);
                let mut owned = 0usize;
                for i in 0..self.span_slots.len() {
                    if self.span_owners[i].is_none() {
                        continue;
                    }
                    let resident = matches!(self.span_states[owned], PageState::Resident(_));
                    owned += 1;
                    if resident {
                        continue;
                    }
                    self.span_slots[kept] = self.span_slots[i];
                    self.span_pids.push(pid);
                    kept += 1;
                }
            }
            _ => {
                for i in 0..self.span_slots.len() {
                    let Some((owner_pid, owner_page)) = self.span_owners[i] else {
                        continue;
                    };
                    if let Some(owner) = self.processes.get(&owner_pid) {
                        if owner.page_table.is_resident(owner_page) {
                            continue;
                        }
                    }
                    self.span_slots[kept] = self.span_slots[i];
                    self.span_pids.push(owner_pid);
                    kept += 1;
                }
            }
        }
        self.span_slots.truncate(kept);

        // Presence probes, room-making (Figure 12's bounded cache), the
        // reads themselves (off the critical path: only dispatch-queue
        // occupancy matters), and the inserts all happen span-at-a-time in
        // the engine.
        self.engine
            .admit_prefetch_span(&self.span_slots, &self.span_pids)
    }

    /// Ensures `pages` frames can be charged to `pid`, swapping out the least
    /// recently used resident pages if needed. Returns the allocation wait
    /// charged to the faulting access.
    fn make_room(&mut self, pid: Pid, pages: u64) -> Nanos {
        let need = self.engine.tenant_pages_to_reclaim(pid, pages);
        if need == 0 {
            return Nanos::ZERO;
        }
        let mut wait = Nanos::ZERO;

        // Under the lazy policy the allocation also has to wait for the
        // reclaimer to scan the (possibly bloated) cache lists before frames
        // can be handed out; under Leap's eager policy that scan is short
        // because consumed prefetch pages are already gone. The scan batch is
        // bounded (kswapd reclaims in SWAP_CLUSTER_MAX-sized chunks), so the
        // wait is capped — the paper reports a ~750 ns average difference.
        let scan_pages = self.engine.reclaim_scan_pages();
        let scan_wait = Nanos(80).saturating_add(Nanos(20) * scan_pages.min(64));
        wait = wait.saturating_add(scan_wait);

        for _ in 0..need {
            let victim = {
                let process = self.processes.get_mut(&pid).expect("registered process");
                process.resident_lru.pop_lru()
            };
            let Some(victim_page) = victim else { break };
            // Slots come from the active core's shard region, so a core's
            // sequential page-outs stay sequential in its own region.
            let core = self.engine.active_core();
            let slot = match self.swap.allocate_on(core, pid, victim_page) {
                Some(s) => s,
                None => break,
            };
            let process = self.processes.get_mut(&pid).expect("registered process");
            if process
                .page_table
                .unmap_to_swap(victim_page, slot)
                .is_some()
            {
                self.engine.record_swap_out(pid);
                wait = wait.saturating_add(SWAP_OUT_OVERHEAD);
                // The write-back itself is asynchronous: issue it so the
                // backend and dispatch queues see the traffic, but do not
                // charge its latency to the faulting access — unless the
                // in-flight budget is exhausted, in which case the stall
                // surfaces as allocation wait below.
                let _ = self.engine.write_remote_async(slot.0);
            }
        }
        wait = wait.saturating_add(self.engine.take_pending_stall());
        self.engine.result.allocation_wait.record(wait);
        wait
    }

    /// Splits this simulator into per-core shard workers for a scheduled
    /// replay: worker `c` owns core `c`'s engine slice
    /// ([`EngineCore::shard_worker`]), swap region
    /// ([`ShardedSwap::region`]), and the paging state of exactly the
    /// processes the scheduler dealt onto core `c` — so workers share no
    /// mutable state and can be stepped from independent OS threads.
    fn into_shard_workers(
        self,
        traces: &[AccessTrace],
        sched: &CoreScheduler,
    ) -> Vec<VmmSimulator> {
        let shards = self.engine.config.cores;
        (0..shards)
            .map(|core| {
                let mut worker = VmmSimulator {
                    engine: self.engine.shard_worker(core, shards),
                    processes: FxHashMap::default(),
                    frames: FramePool::new(u64::MAX / 2),
                    swap: ShardedSwap::region(core, shards, SWAP_CAPACITY),
                    span_slots: Vec::new(),
                    span_owners: Vec::new(),
                    span_pids: Vec::new(),
                    span_pages: Vec::new(),
                    span_states: Vec::new(),
                    tenant_budget_pages: self.tenant_budget_pages.clone(),
                    prepopulate_multi: self.prepopulate_multi,
                };
                let mut accesses = 0usize;
                for process in sched.run_queue(core) {
                    worker.register_process(
                        Pid(process as u32 + 1),
                        traces[process].working_set_pages(),
                    );
                    accesses += traces[process].len();
                }
                if self.prepopulate_multi {
                    // Worker construction runs identically in Serial and
                    // Threaded mode, so prepopulating here keeps the replay
                    // modes bit-identical. Run-queue order fixes which slot
                    // range each process's cold pages spill into.
                    for process in sched.run_queue(core) {
                        worker.prepopulate(Pid(process as u32 + 1), &traces[process]);
                    }
                }
                worker.engine.reserve_accesses(accesses);
                worker
            })
            .collect()
    }

    /// Maps `page` into `pid`'s address space as resident.
    fn map_in(&mut self, pid: Pid, page: VirtPage, _dirty: bool) {
        let frame = self
            .frames
            .allocate()
            .expect("global frame pool is effectively unbounded");
        // make_room should have freed space; if the charge still does not
        // fit, the limit saturates and one more page is evicted next time.
        let _ = self.engine.charge_tenant(pid);
        let process = self.processes.get_mut(&pid).expect("registered process");
        process.page_table.map(page, frame);
        process.resident_lru.push(page);
    }
}

impl CoreWorker for VmmSimulator {
    fn step(&mut self, pid: Pid, access: Access) -> FaultEvent {
        self.step_access(pid, access)
    }

    fn sync_clock(&mut self, now: Nanos) {
        self.engine.sync_clock(now);
    }

    fn local_now(&self) -> Nanos {
        self.engine.clock.now()
    }

    fn into_partial(mut self) -> RunResult {
        self.engine.seal_pipeline();
        self.engine.result
    }
}

impl Simulator for VmmSimulator {
    fn config(&self) -> &SimConfig {
        &self.engine.config
    }

    fn label(&self) -> &str {
        &self.engine.label
    }

    fn prepare(&mut self, traces: &[AccessTrace]) {
        for (i, trace) in traces.iter().enumerate() {
            self.register_process(Pid(i as u32 + 1), trace.working_set_pages());
        }
        self.engine
            .reserve_accesses(traces.iter().map(|t| t.len()).sum());
        self.engine.stamp_run(EngineCore::workload_name(traces));
    }

    /// Prepares the fallback monolithic scheduled replay (used only when
    /// `per_process_isolation` is off): per-process state as in
    /// [`Simulator::prepare`], then shards the swap space and the engine's
    /// cache/eviction state into one shard per configured core while the
    /// prefetcher stream stays shared.
    fn prepare_multi(&mut self, traces: &[AccessTrace]) {
        self.prepare(traces);
        let shards = self.engine.config.cores;
        self.swap = ShardedSwap::new(shards, SWAP_CAPACITY);
        self.engine.enter_scheduled_mode(shards, self.swap.span());
        if self.prepopulate_multi {
            for (i, trace) in traces.iter().enumerate() {
                self.prepopulate(Pid(i as u32 + 1), trace);
            }
        }
    }

    fn switch_core(&mut self, core: usize, now: Nanos) {
        self.engine.switch_core(core, now);
    }

    fn finish_multi(&mut self, completion: Nanos) {
        self.engine.finish_at(completion);
    }

    /// Replays `traces` through per-core shard workers — serially
    /// interleaved or one OS thread per core, per
    /// [`SimConfig::replay_mode`] — and aggregates the shards
    /// deterministically (see [`crate::parallel`]).
    ///
    /// Without per-process isolation every process shares one prefetcher
    /// stream *across cores* (the kernel's global readahead state), so the
    /// engine cannot be split into share-nothing workers; that configuration
    /// keeps the monolithic serial reference regardless of
    /// [`SimConfig::replay_mode`] — the parallelism Leap's per-process,
    /// per-core state enables is precisely what the shared path lacks.
    fn run_multi_observed(
        self,
        traces: &[AccessTrace],
        observers: &mut [&mut dyn Observer],
    ) -> RunResult {
        let config = self.engine.config;
        if !config.per_process_isolation {
            return crate::session::run_multi_monolithic(self, traces, observers);
        }
        let lens: Vec<usize> = traces.iter().map(|t| t.len()).collect();
        let sched = CoreScheduler::with_context_switch(
            &lens,
            config.cores,
            config.sched_quantum,
            config.seed,
            config.context_switch_cost,
        );
        let label = self.engine.label.clone();
        let workload = EngineCore::workload_name(traces);
        let workers = self.into_shard_workers(traces, &sched);
        let outcome = parallel::replay(
            config.replay_mode,
            workers,
            traces,
            sched,
            !observers.is_empty(),
        );
        parallel::finish_sharded(label, workload, outcome, observers)
    }

    fn now(&self) -> Nanos {
        self.engine.clock.now()
    }

    /// Touches every distinct page of `trace` once, in address order,
    /// without recording metrics (the allocation/initialisation phase).
    fn prepopulate(&mut self, pid: Pid, trace: &AccessTrace) {
        let mut pages: Vec<u64> = trace.iter().map(|a| a.page).collect();
        pages.sort_unstable();
        pages.dedup();
        for page in pages {
            let vp = VirtPage(page);
            let already_resident = {
                let process = self.processes.get(&pid).expect("registered process");
                process.page_table.is_resident(vp)
            };
            if already_resident {
                continue;
            }
            let _ = self.make_room(pid, 1);
            self.map_in(pid, vp, true);
        }
        // Prepopulation metrics (allocation waits recorded by make_room,
        // write-backs submitted to the pipeline) do not belong in the
        // measured run.
        self.engine.result.allocation_wait = Default::default();
        self.engine.result.pages_swapped_out = 0;
        self.engine.result.tenant_evictions.clear();
        self.engine.reset_pipeline();
    }

    fn step_access(&mut self, pid: Pid, access: Access) -> FaultEvent {
        self.engine.set_active_tenant(pid.0);
        self.engine.begin_access(&access);

        let page = VirtPage(access.page);
        let state = {
            let process = self
                .processes
                .get(&pid)
                .unwrap_or_else(|| panic!("process {pid} not registered"));
            process.page_table.lookup(page)
        };

        let (latency, outcome, prefetches_issued) = match state {
            PageState::Resident(_) => {
                let process = self.processes.get_mut(&pid).expect("checked above");
                process.resident_lru.touch(&page);
                (LOCAL_ACCESS, AccessOutcome::LocalHit, 0)
            }
            PageState::Untouched => {
                self.engine.result.first_touch_faults += 1;
                let alloc_wait = self.make_room(pid, 1);
                self.map_in(pid, page, access.is_write);
                (
                    MINOR_FAULT.saturating_add(alloc_wait),
                    AccessOutcome::MinorFault,
                    0,
                )
            }
            PageState::Swapped(slot) => self.remote_access(pid, page, slot, access.is_write),
        };

        self.engine
            .complete_access(pid, access, outcome, latency, prefetches_issued)
    }

    fn into_result(self) -> RunResult {
        self.engine.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvictionPolicy;
    use leap_prefetcher::PrefetcherKind;
    use leap_remote::BackendKind;
    use leap_sim_core::units::MIB;
    use leap_workloads::{interleave, sequential_trace, stride_trace, AppKind, AppModel};

    /// A single measured Stride-10 pass; experiments prepopulate the working
    /// set first so the swap-slot layout follows the address order, as in the
    /// paper's microbenchmark methodology.
    fn small_stride_trace() -> AccessTrace {
        stride_trace(4 * MIB, 10, 1)
    }

    fn leap_at(fraction: f64) -> SimConfig {
        SimConfig::builder()
            .memory_fraction(fraction)
            .build()
            .unwrap()
    }

    fn linux_at(fraction: f64) -> SimConfig {
        SimConfig::linux_defaults()
            .to_builder()
            .memory_fraction(fraction)
            .build()
            .unwrap()
    }

    #[test]
    fn full_memory_has_no_remote_accesses() {
        let trace = sequential_trace(2 * MIB, 2);
        let result = VmmSimulator::new(leap_at(1.0)).run(&trace);
        assert_eq!(result.remote_accesses, 0);
        assert_eq!(result.first_touch_faults, 512);
        assert_eq!(result.total_accesses, 1024);
    }

    #[test]
    fn constrained_memory_causes_remote_accesses() {
        let trace = sequential_trace(4 * MIB, 2);
        let result = VmmSimulator::new(leap_at(0.5)).run(&trace);
        assert!(result.remote_accesses > 0);
        assert!(result.pages_swapped_out > 0);
        assert_eq!(
            result.total_accesses,
            result.remote_accesses
                + result.first_touch_faults
                + (result.total_accesses - result.remote_accesses - result.first_touch_faults)
        );
    }

    #[test]
    fn leap_beats_default_path_on_stride() {
        let trace = small_stride_trace();
        let mut linux = VmmSimulator::new(linux_at(0.5)).run_prepopulated(&trace);
        let mut leap = VmmSimulator::new(leap_at(0.5)).run_prepopulated(&trace);
        assert!(linux.remote_accesses() > 0 && leap.remote_accesses() > 0);
        // Median remote latency improves by well over an order of magnitude
        // (the paper reports up to 104× for Stride-10).
        let linux_median = linux.median_remote_latency().as_nanos() as f64;
        let leap_median = leap.median_remote_latency().as_nanos() as f64;
        assert!(
            linux_median > 5.0 * leap_median,
            "expected a large median gap, got linux={linux_median}ns leap={leap_median}ns"
        );
        // Completion time improves too.
        assert!(leap.completion_time < linux.completion_time);
    }

    #[test]
    fn leap_cache_hit_ratio_is_high_on_regular_patterns() {
        let trace = small_stride_trace();
        let result = VmmSimulator::new(leap_at(0.5)).run_prepopulated(&trace);
        assert!(
            result.cache_stats.hit_ratio() > 0.7,
            "hit ratio {} too low",
            result.cache_stats.hit_ratio()
        );
        assert!(result.prefetch_stats.coverage() > 0.5);
    }

    #[test]
    fn readahead_fails_on_stride_but_works_on_sequential() {
        let stride = small_stride_trace();
        let seq = sequential_trace(4 * MIB, 1);
        let config = linux_at(0.5);
        let stride_result = VmmSimulator::new(config).run_prepopulated(&stride);
        let seq_result = VmmSimulator::new(config).run_prepopulated(&seq);
        assert!(
            seq_result.cache_stats.hit_ratio() > 0.5,
            "sequential hit ratio {}",
            seq_result.cache_stats.hit_ratio()
        );
        assert!(
            stride_result.cache_stats.hit_ratio() < 0.2,
            "stride hit ratio {}",
            stride_result.cache_stats.hit_ratio()
        );
    }

    #[test]
    fn eager_eviction_keeps_the_cache_small() {
        let trace = small_stride_trace();
        let eager = VmmSimulator::new(leap_at(0.5)).run_prepopulated(&trace);
        let lazy_config = SimConfig::builder()
            .memory_fraction(0.5)
            .eviction(EvictionPolicy::Lazy)
            .build()
            .unwrap();
        let lazy = VmmSimulator::new(lazy_config).run_prepopulated(&trace);
        // Under the lazy policy consumed prefetched pages linger and are
        // eventually reclaimed by the background scanner; under the eager
        // policy they never wait.
        assert!(eager.eviction_wait.is_empty());
        assert!(
            !lazy.eviction_wait.is_empty() || lazy.cache_stats.evictions() == 0,
            "lazy run should observe post-hit waits once reclaim happens"
        );
    }

    #[test]
    fn disk_backend_is_slower_than_rdma() {
        let trace = small_stride_trace();
        let hdd_config = SimConfig::disk_defaults(BackendKind::Hdd)
            .to_builder()
            .memory_fraction(0.5)
            .build()
            .unwrap();
        let mut hdd = VmmSimulator::new(hdd_config).run_prepopulated(&trace);
        let mut rdma = VmmSimulator::new(linux_at(0.5)).run_prepopulated(&trace);
        assert!(hdd.median_remote_latency() > rdma.median_remote_latency());
        assert!(hdd.completion_time > rdma.completion_time);
    }

    #[test]
    fn throughput_and_latency_improve_with_more_memory() {
        let model = AppModel::new(AppKind::Memcached, 5).with_accesses(30_000);
        let trace = model.generate();
        let at_25 = VmmSimulator::new(leap_at(0.25)).run(&trace);
        let at_100 = VmmSimulator::new(leap_at(1.0)).run(&trace);
        assert!(at_100.completion_time < at_25.completion_time);
        assert!(at_100.throughput_ops_per_sec() > at_25.throughput_ops_per_sec());
    }

    #[test]
    fn constrained_prefetch_cache_still_works() {
        let trace = small_stride_trace();
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .prefetch_cache_pages(64)
            .build()
            .unwrap();
        let result = VmmSimulator::new(config).run_prepopulated(&trace);
        assert!(result.cache_stats.hit_ratio() > 0.3);
        assert!(result.remote_accesses > 0);
    }

    #[test]
    fn no_prefetcher_never_adds_to_cache() {
        let trace = small_stride_trace();
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .prefetcher(PrefetcherKind::None)
            .build()
            .unwrap();
        let result = VmmSimulator::new(config).run_prepopulated(&trace);
        assert_eq!(result.cache_stats.cache_adds(), 0);
        assert_eq!(result.prefetch_stats.pages_prefetched(), 0);
        assert_eq!(result.cache_stats.hits(), 0);
    }

    #[test]
    fn multi_process_run_with_isolation_beats_shared_state() {
        // One well-behaved sequential process plus one random process.
        let seq = sequential_trace(2 * MIB, 2);
        let noisy = AppModel::new(AppKind::Memcached, 11)
            .with_working_set(2 * MIB)
            .with_accesses(seq.len())
            .generate();
        let traces = vec![seq, noisy];
        let schedule = interleave(&traces, 123);

        let isolated_config = SimConfig::builder()
            .memory_fraction(0.5)
            .per_process_isolation(true)
            .build()
            .unwrap();
        let isolated = VmmSimulator::new(isolated_config).run_interleaved(&traces, &schedule);
        let shared_config = SimConfig::builder()
            .memory_fraction(0.5)
            .per_process_isolation(false)
            .build()
            .unwrap();
        let shared = VmmSimulator::new(shared_config).run_interleaved(&traces, &schedule);
        assert!(isolated.remote_accesses > 0);
        // Isolation lets the sequential process keep its trend, so overall
        // prefetch coverage is at least as good as with shared state.
        assert!(isolated.prefetch_stats.coverage() >= shared.prefetch_stats.coverage());
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let trace = small_stride_trace();
        let config = SimConfig::builder().seed(77).build().unwrap();
        let a = VmmSimulator::new(config).run_prepopulated(&trace);
        let b = VmmSimulator::new(config).run_prepopulated(&trace);
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.remote_accesses, b.remote_accesses);
        assert_eq!(a.cache_stats, b.cache_stats);
    }

    #[test]
    fn scheduled_run_multi_replays_every_access() {
        let traces = vec![
            sequential_trace(2 * MIB, 2),
            stride_trace(2 * MIB, 10, 1),
            sequential_trace(MIB, 2),
        ];
        let total: u64 = traces.iter().map(|t| t.len() as u64).sum();
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .cores(2)
            .sched_quantum(Nanos::from_micros(200))
            .seed(3)
            .build()
            .unwrap();
        let result = VmmSimulator::new(config).run_multi(&traces);
        assert_eq!(result.total_accesses, total);
        assert!(result.remote_accesses > 0);
        assert_eq!(
            result.remote_accesses,
            result.cache_stats.hits() + result.cache_stats.misses()
        );
    }

    #[test]
    fn scheduled_run_emits_events_on_multiple_cores() {
        use crate::session::CoreActivity;
        let traces: Vec<_> = (0..4)
            .map(|i| {
                AppModel::new(AppKind::Memcached, 20 + i)
                    .with_working_set(2 * MIB)
                    .with_accesses(2_000)
                    .generate()
            })
            .collect();
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .cores(4)
            .seed(5)
            .build()
            .unwrap();
        let mut activity = CoreActivity::default();
        let result = VmmSimulator::new(config)
            .session()
            .observe(&mut activity)
            .run_multi(&traces);
        assert!(activity.active_cores() >= 2, "work stayed on one core");
        assert_eq!(activity.total_accesses(), result.total_accesses);
        // The makespan the result reports is the latest core's local time.
        assert_eq!(activity.completion_time(), result.completion_time);
    }

    #[test]
    fn more_cores_shorten_the_makespan() {
        let traces: Vec<_> = (0..4)
            .map(|i| {
                AppModel::new(AppKind::Memcached, 30 + i)
                    .with_working_set(2 * MIB)
                    .with_accesses(4_000)
                    .generate()
            })
            .collect();
        let at_cores = |cores: usize| {
            let config = SimConfig::builder()
                .memory_fraction(0.5)
                .cores(cores)
                .seed(9)
                .build()
                .unwrap();
            VmmSimulator::new(config).run_multi(&traces).completion_time
        };
        let serial = at_cores(1);
        let parallel = at_cores(4);
        assert!(
            parallel < serial,
            "4 cores ({parallel:?}) should beat 1 core ({serial:?})"
        );
    }

    #[test]
    fn remote_access_accounting_is_consistent() {
        let trace = small_stride_trace();
        let result = VmmSimulator::new(leap_at(0.5)).run_prepopulated(&trace);
        // Every remote access is either a cache hit or a miss.
        assert_eq!(
            result.remote_accesses,
            result.cache_stats.hits() + result.cache_stats.misses()
        );
        // Remote-access latency histogram has one sample per remote access.
        assert_eq!(
            result.remote_access_latency.len() as u64,
            result.remote_accesses
        );
        assert_eq!(result.access_latency.len() as u64, result.total_accesses);
    }

    #[test]
    fn backend_latency_override_shifts_the_distribution() {
        let trace = small_stride_trace();
        let slow_config = SimConfig::linux_defaults()
            .to_builder()
            .memory_fraction(0.5)
            .backend_read_latency(Nanos::from_micros(500))
            .backend_write_latency(Nanos::from_micros(500))
            .build()
            .unwrap();
        let mut slow = VmmSimulator::new(slow_config).run_prepopulated(&trace);
        let mut stock = VmmSimulator::new(linux_at(0.5)).run_prepopulated(&trace);
        // A 500 µs constant device latency dominates the stock RDMA medians.
        assert!(
            slow.median_remote_latency() > stock.median_remote_latency(),
            "override {:?} should exceed stock {:?}",
            slow.median_remote_latency(),
            stock.median_remote_latency()
        );
    }
}
