//! The disaggregated-VMM fault engine.
//!
//! [`VmmSimulator`] replays page-granular access traces against a model of
//! the Linux paging machinery backed by remote memory (or a local disk):
//! per-process page tables, a cgroup-style resident-memory limit, the shared
//! swap space, the swap/prefetch cache, a prefetcher, an eviction policy, and
//! one of the two data paths. It produces the latency distributions, cache
//! counters, and completion times the paper's evaluation reports.
//!
//! ## What happens on an access
//!
//! 1. The process "computes" for the access's compute cost.
//! 2. If the page is resident, the access costs a local DRAM reference.
//! 3. If the page has never been touched, it is a demand-zero minor fault:
//!    allocate a frame (evicting under memory pressure) and map it.
//! 4. Otherwise the page is swapped out — a *remote page access*:
//!    - a swap-cache hit costs the cache lookup plus the MMU update; under
//!      Leap's eager policy the cache entry is freed immediately;
//!    - a miss goes down the configured data path (legacy block layer or
//!      Leap's lean path) to the backend, then the prefetcher is consulted
//!      and its candidates are read asynchronously into the cache.
//! 5. Newly resident pages may push the process over its memory limit, in
//!    which case the least recently used resident pages are swapped out
//!    (write-back modelled asynchronously) and, under the lazy policy, the
//!    reclaimer's scan time is charged as allocation wait.

use crate::config::{DataPathKind, EvictionPolicy, SimConfig};
use crate::result::RunResult;
use crate::tracker::PageAccessTracker;
use leap_datapath::{DataPath, LeanDataPath, LegacyDataPath, Stage};
use leap_eviction::{LazyReclaimer, PrefetchFifoLru};
use leap_mem::{
    CacheOrigin, FramePool, LruList, MemoryLimit, PageState, PageTable, Pid, SwapCache, SwapSlot,
    SwapSpace, VirtPage,
};
use leap_prefetcher::PageAddr;
use leap_remote::{HostAgent, HostAgentConfig, RemoteCluster};
use leap_sim_core::units::PAGE_SIZE;
use leap_sim_core::{DetRng, Nanos, SimClock};
use leap_workloads::{Access, AccessTrace};
use std::collections::HashMap;

/// Latency of a local DRAM access (page already resident and mapped).
const LOCAL_ACCESS: Nanos = Nanos(100);
/// Cost of a demand-zero minor fault (allocate + zero + map).
const MINOR_FAULT: Nanos = Nanos(1_500);
/// Cost of looking up the swap cache on the fault path.
const CACHE_LOOKUP: Nanos = Nanos(270);
/// Cost of mapping a page that is already present in the swap cache (no I/O,
/// no new frame: just the PTE update and bookkeeping).
const FAST_MAP: Nanos = Nanos(400);
/// Fixed software cost of swapping one page out (allocating the slot,
/// unmapping, queueing the write-back, which itself completes asynchronously).
const SWAP_OUT_OVERHEAD: Nanos = Nanos(1_000);
/// Lazy reclaim is triggered when the swap cache grows beyond this many
/// pages over the number of recently useful entries (a stand-in for the
/// kernel's watermarks).
const LAZY_CACHE_HIGH_WATERMARK: u64 = 4_096;

/// Per-process paging state.
#[derive(Debug)]
struct ProcessState {
    page_table: PageTable,
    limit: MemoryLimit,
    resident_lru: LruList<VirtPage>,
}

/// The disaggregated-VMM simulator.
///
/// See the crate-level example for typical usage; [`VmmSimulator::run`]
/// replays a single-process trace and [`VmmSimulator::run_multi`] replays an
/// interleaved multi-process schedule.
#[derive(Debug)]
pub struct VmmSimulator {
    config: SimConfig,
    clock: SimClock,
    processes: HashMap<Pid, ProcessState>,
    frames: FramePool,
    swap: SwapSpace,
    cache: SwapCache,
    tracker: PageAccessTracker,
    data_path: Box<dyn DataPath>,
    lazy: LazyReclaimer,
    eager: PrefetchFifoLru,
    result: RunResult,
    core_cursor: usize,
}

impl VmmSimulator {
    /// Creates a simulator for the given configuration.
    pub fn new(config: SimConfig) -> Self {
        let mut rng = DetRng::seed_from(config.seed);
        let data_path: Box<dyn DataPath> = match config.data_path {
            DataPathKind::LinuxDefault => Box::new(LegacyDataPath::new(config.backend, rng.fork())),
            DataPathKind::Leap => {
                let agent = HostAgent::new(
                    HostAgentConfig {
                        cores: config.cores,
                        backend: config.backend,
                        ..HostAgentConfig::default()
                    },
                    RemoteCluster::homogeneous(4, 256),
                    rng.fork(),
                );
                Box::new(LeanDataPath::new(agent, rng.fork()))
            }
        };
        VmmSimulator {
            clock: SimClock::new(),
            processes: HashMap::new(),
            // The frame pool is sized lazily per-process via MemoryLimit; the
            // global pool just needs to be large enough to never be the
            // binding constraint.
            frames: FramePool::new(u64::MAX / 2),
            swap: SwapSpace::new(u64::MAX / 2),
            cache: SwapCache::new(config.prefetch_cache_pages),
            tracker: PageAccessTracker::new(
                config.prefetcher,
                config.history_size,
                config.max_prefetch_window,
                config.per_process_isolation,
            ),
            data_path,
            lazy: LazyReclaimer::with_defaults(),
            eager: PrefetchFifoLru::new(),
            result: RunResult::default(),
            core_cursor: 0,
            config,
        }
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replays a single-process trace to completion and returns the results.
    ///
    /// The process's memory limit is `memory_fraction` of the trace's
    /// working set.
    pub fn run(mut self, trace: &AccessTrace) -> RunResult {
        let pid = Pid(1);
        self.register_process(pid, trace.working_set_pages());
        self.result.workload = trace.name().to_string();
        self.result.config_label = self.config.label();
        for access in trace.iter() {
            self.step(pid, *access);
        }
        self.finish()
    }

    /// Like [`VmmSimulator::run`], but first touches the trace's working set
    /// once in virtual-address order without recording any metrics.
    ///
    /// This models the paper's microbenchmark methodology: the application
    /// allocates and initialises its working set (a sequential sweep, which
    /// also fixes the swap-slot layout to follow the address order), and only
    /// the subsequent pattern accesses are measured.
    pub fn run_prepopulated(mut self, trace: &AccessTrace) -> RunResult {
        let pid = Pid(1);
        self.register_process(pid, trace.working_set_pages());
        self.result.workload = trace.name().to_string();
        self.result.config_label = self.config.label();
        self.prepopulate(pid, trace);
        for access in trace.iter() {
            self.step(pid, *access);
        }
        self.finish()
    }

    /// Touches every distinct page of `trace` once, in address order,
    /// without recording metrics (the allocation/initialisation phase).
    fn prepopulate(&mut self, pid: Pid, trace: &AccessTrace) {
        let mut pages: Vec<u64> = trace.iter().map(|a| a.page).collect();
        pages.sort_unstable();
        pages.dedup();
        for page in pages {
            let vp = VirtPage(page);
            let already_resident = {
                let process = self.processes.get(&pid).expect("registered process");
                process.page_table.is_resident(vp)
            };
            if already_resident {
                continue;
            }
            let _ = self.make_room_silent(pid, 1);
            self.map_in(pid, vp, true);
        }
        // Prepopulation metrics (allocation waits recorded by make_room) do
        // not belong in the measured run.
        self.result.allocation_wait = Default::default();
        self.result.pages_swapped_out = 0;
    }

    /// `make_room` without charging allocation-wait metrics (used only by
    /// prepopulation).
    fn make_room_silent(&mut self, pid: Pid, pages: u64) -> Nanos {
        self.make_room(pid, pages)
    }

    /// Replays an interleaved multi-process schedule (`(process index,
    /// access)` pairs, as produced by [`leap_workloads::interleave`]).
    ///
    /// Each process's memory limit is `memory_fraction` of its own working
    /// set, mirroring the paper's per-application cgroup limits.
    pub fn run_multi(
        mut self,
        traces: &[AccessTrace],
        schedule: &[leap_workloads::multi::InterleavedStep],
    ) -> RunResult {
        for (i, trace) in traces.iter().enumerate() {
            self.register_process(Pid(i as u32 + 1), trace.working_set_pages());
        }
        self.result.workload = traces
            .iter()
            .map(|t| t.name().to_string())
            .collect::<Vec<_>>()
            .join("+");
        self.result.config_label = self.config.label();
        for step in schedule {
            self.step(Pid(step.process as u32 + 1), step.access);
        }
        self.finish()
    }

    fn register_process(&mut self, pid: Pid, working_set_pages: u64) {
        let limit =
            MemoryLimit::fraction_of(working_set_pages * PAGE_SIZE, self.config.memory_fraction);
        self.processes.insert(
            pid,
            ProcessState {
                page_table: PageTable::new(),
                limit,
                resident_lru: LruList::new(),
            },
        );
    }

    fn finish(mut self) -> RunResult {
        self.result.completion_time = self.clock.now();
        self.result
    }

    /// Picks the CPU core the next request is issued from (round-robin, as a
    /// stand-in for the scheduler spreading threads over cores).
    fn next_core(&mut self) -> usize {
        self.core_cursor = (self.core_cursor + 1) % self.config.cores.max(1);
        self.core_cursor
    }

    /// Executes one access and charges its latency to the clock.
    fn step(&mut self, pid: Pid, access: Access) {
        self.clock.advance(access.compute);
        self.result.total_accesses += 1;

        let page = VirtPage(access.page);
        let state = {
            let process = self
                .processes
                .get(&pid)
                .unwrap_or_else(|| panic!("process {pid} not registered"));
            process.page_table.lookup(page)
        };

        let latency = match state {
            PageState::Resident(_) => {
                let process = self.processes.get_mut(&pid).expect("checked above");
                process.resident_lru.touch(&page);
                LOCAL_ACCESS
            }
            PageState::Untouched => {
                self.result.first_touch_faults += 1;
                let alloc_wait = self.make_room(pid, 1);
                self.map_in(pid, page, access.is_write);
                MINOR_FAULT.saturating_add(alloc_wait)
            }
            PageState::Swapped(slot) => self.remote_access(pid, page, slot, access.is_write),
        };

        self.clock.advance(latency);
        self.result.access_latency.record(latency);
        if matches!(state, PageState::Swapped(_)) {
            self.result.remote_access_latency.record(latency);
        }
    }

    /// Handles an access to a swapped-out page (the remote access path).
    fn remote_access(&mut self, pid: Pid, page: VirtPage, slot: SwapSlot, is_write: bool) -> Nanos {
        self.result.remote_accesses += 1;
        self.result.prefetch_stats.record_request();
        let now = self.clock.now();

        let mut latency;
        let mut cache_hit = false;
        if let Some(entry) = self.cache.record_hit(slot, now) {
            // Swap-cache hit: the page's data is already in local DRAM, so
            // the access costs the cache lookup plus a fast page-table map —
            // sub-µs, as the paper reports for Leap up to the 85th percentile.
            cache_hit = true;
            latency = CACHE_LOOKUP.saturating_add(FAST_MAP);
            match entry.origin {
                CacheOrigin::Prefetch => {
                    self.result.cache_stats.record_prefetch_hit();
                    self.result
                        .prefetch_stats
                        .record_prefetch_hit(now.saturating_sub(entry.inserted_at));
                    self.tracker.on_prefetch_hit(pid, PageAddr(slot.0));
                }
                CacheOrigin::Demand => {
                    self.result.cache_stats.record_demand_hit();
                }
            }
            // Consume the cache entry according to the eviction policy.
            match self.config.eviction {
                EvictionPolicy::Eager => {
                    if !self.eager.on_hit(slot, &mut self.cache) {
                        // Demand entries are not on the prefetch FIFO; free
                        // them directly, which is still eager behaviour.
                        self.cache.remove(slot);
                    }
                    self.lazy.on_remove(slot);
                }
                EvictionPolicy::Lazy => {
                    // The page stays in the cache until the background
                    // reclaimer gets to it (Figure 4's wasted residency).
                    self.lazy.on_hit(slot);
                }
            }
        } else {
            // Swap-cache miss: full data-path traversal.
            self.result.cache_stats.record_miss();
            let core = self.next_core();
            let breakdown = self.data_path.read_page(slot.0, core, now);
            latency = breakdown.total();
            // Consult the prefetcher and issue its candidates asynchronously.
            let decision = self.tracker.on_fault(pid, PageAddr(slot.0));
            if self.config.data_path == DataPathKind::Leap {
                // The lean path already charges its own prefetcher stage; the
                // legacy path has no equivalent hook, so nothing extra here.
                let _ = breakdown.stage_total(Stage::Prefetcher);
            }
            self.issue_prefetches(pid, &decision.prefetch);
        }

        // The faulting page becomes resident. On a cache hit the data is
        // already in a local frame, so the cgroup charge is rebalanced by the
        // background reclaimer (no synchronous allocation wait); on a miss
        // the faulting process may have to wait for direct reclaim.
        if cache_hit {
            let _ = self.make_room(pid, 1);
        } else {
            let alloc_wait = self.make_room(pid, 1);
            latency = latency.saturating_add(alloc_wait);
        }
        self.swap.free(slot);
        self.map_in(pid, page, is_write);

        // Under the lazy policy, run the background reclaimer when the cache
        // has grown past its watermark; its cost is *not* charged to this
        // access (it is a background thread) but the wait times it observes
        // feed Figure 4.
        if self.config.eviction == EvictionPolicy::Lazy {
            self.maybe_run_lazy_reclaim();
        }

        latency
    }

    /// Reads the prefetch candidates into the swap cache (asynchronously with
    /// respect to the faulting access).
    fn issue_prefetches(&mut self, _pid: Pid, candidates: &[PageAddr]) {
        let now = self.clock.now();
        for candidate in candidates {
            let slot = SwapSlot(candidate.0);
            // Only pages that are actually swapped out can be prefetched.
            let Some((owner_pid, owner_page)) = self.swap.owner(slot) else {
                continue;
            };
            // Skip pages that are already resident or already cached.
            if self.cache.contains(slot) {
                continue;
            }
            if let Some(owner) = self.processes.get(&owner_pid) {
                if owner.page_table.is_resident(owner_page) {
                    continue;
                }
            }
            // Make room in a bounded prefetch cache (Figure 12): under the
            // eager policy unconsumed prefetches are reclaimed FIFO, under
            // the lazy policy the background reclaimer is responsible.
            if self.cache.is_full() {
                match self.config.eviction {
                    EvictionPolicy::Eager => {
                        let victims = self.eager.reclaim_fifo(&mut self.cache, 1);
                        for v in &victims {
                            self.lazy.on_remove(*v);
                            self.result.cache_stats.record_eviction(true);
                        }
                        if victims.is_empty() {
                            continue;
                        }
                    }
                    EvictionPolicy::Lazy => {
                        let outcome = self.lazy.reclaim(&mut self.cache, 1, now);
                        for wait in &outcome.post_hit_wait {
                            self.result.eviction_wait.record(*wait);
                        }
                        for _ in &outcome.freed {
                            self.result.cache_stats.record_eviction(false);
                        }
                        if outcome.freed.is_empty() {
                            continue;
                        }
                    }
                }
            }
            // Issue the read; the transfer happens off the critical path, so
            // only the dispatch-queue occupancy matters (captured inside the
            // lean data path's shared agent).
            let core = self.next_core();
            let _ = self.data_path.read_page(slot.0, core, now);
            if self
                .cache
                .insert(slot, owner_pid, CacheOrigin::Prefetch, now)
            {
                self.result.cache_stats.record_add(1);
                self.result.prefetch_stats.record_prefetched(1);
                self.eager.on_prefetch_insert(slot);
                self.lazy.on_insert(slot);
            }
        }
    }

    /// Ensures `pages` frames can be charged to `pid`, swapping out the least
    /// recently used resident pages if needed. Returns the allocation wait
    /// charged to the faulting access.
    fn make_room(&mut self, pid: Pid, pages: u64) -> Nanos {
        let need = {
            let process = self.processes.get(&pid).expect("registered process");
            process.limit.pages_to_reclaim_for(pages)
        };
        if need == 0 {
            return Nanos::ZERO;
        }
        let mut wait = Nanos::ZERO;

        // Under the lazy policy the allocation also has to wait for the
        // reclaimer to scan the (possibly bloated) cache lists before frames
        // can be handed out; under Leap's eager policy that scan is short
        // because consumed prefetch pages are already gone. The scan batch is
        // bounded (kswapd reclaims in SWAP_CLUSTER_MAX-sized chunks), so the
        // wait is capped — the paper reports a ~750 ns average difference.
        let scan_pages = match self.config.eviction {
            EvictionPolicy::Lazy => self.lazy.tracked_pages() as u64,
            EvictionPolicy::Eager => self.eager.len() as u64,
        };
        let scan_wait = Nanos(80).saturating_add(Nanos(20) * scan_pages.min(64));
        wait = wait.saturating_add(scan_wait);

        for _ in 0..need {
            let victim = {
                let process = self.processes.get_mut(&pid).expect("registered process");
                process.resident_lru.pop_lru()
            };
            let Some(victim_page) = victim else { break };
            let slot = match self.swap.allocate(pid, victim_page) {
                Some(s) => s,
                None => break,
            };
            let process = self.processes.get_mut(&pid).expect("registered process");
            if process
                .page_table
                .unmap_to_swap(victim_page, slot)
                .is_some()
            {
                process.limit.uncharge(1);
                self.result.pages_swapped_out += 1;
                wait = wait.saturating_add(SWAP_OUT_OVERHEAD);
                // The write-back itself is asynchronous: issue it so the
                // backend and dispatch queues see the traffic, but do not
                // charge its latency to the faulting access.
                let core = self.next_core();
                let now = self.clock.now();
                let _ = self.data_path.write_page(slot.0, core, now);
            }
        }
        self.result.allocation_wait.record(wait);
        wait
    }

    /// Maps `page` into `pid`'s address space as resident.
    fn map_in(&mut self, pid: Pid, page: VirtPage, _dirty: bool) {
        let frame = self
            .frames
            .allocate()
            .expect("global frame pool is effectively unbounded");
        let process = self.processes.get_mut(&pid).expect("registered process");
        if !process.limit.try_charge(1) {
            // make_room should have freed space; as a fallback charge anyway
            // by evicting one more page next time (the limit saturates).
            let _ = process.limit.try_charge(0);
        }
        process.page_table.map(page, frame);
        process.resident_lru.push(page);
    }

    /// Runs the background lazy reclaimer when the swap cache has grown past
    /// the high watermark.
    fn maybe_run_lazy_reclaim(&mut self) {
        if self.cache.len() <= LAZY_CACHE_HIGH_WATERMARK {
            return;
        }
        let target = self.cache.len() - LAZY_CACHE_HIGH_WATERMARK / 2;
        let now = self.clock.now();
        let outcome = self.lazy.reclaim(&mut self.cache, target, now);
        for wait in &outcome.post_hit_wait {
            self.result.eviction_wait.record(*wait);
        }
        for _ in 0..outcome.freed_unused_prefetches {
            self.result.cache_stats.record_eviction(true);
        }
        let consumed_or_demand = outcome.freed.len() as u64 - outcome.freed_unused_prefetches;
        for _ in 0..consumed_or_demand {
            self.result.cache_stats.record_eviction(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_prefetcher::PrefetcherKind;
    use leap_remote::BackendKind;
    use leap_sim_core::units::MIB;
    use leap_workloads::{interleave, sequential_trace, stride_trace, AppKind, AppModel};

    /// A single measured Stride-10 pass; experiments prepopulate the working
    /// set first so the swap-slot layout follows the address order, as in the
    /// paper's microbenchmark methodology.
    fn small_stride_trace() -> AccessTrace {
        stride_trace(4 * MIB, 10, 1)
    }

    #[test]
    fn full_memory_has_no_remote_accesses() {
        let trace = sequential_trace(2 * MIB, 2);
        let config = SimConfig::leap_defaults().with_memory_fraction(1.0);
        let result = VmmSimulator::new(config).run(&trace);
        assert_eq!(result.remote_accesses, 0);
        assert_eq!(result.first_touch_faults, 512);
        assert_eq!(result.total_accesses, 1024);
    }

    #[test]
    fn constrained_memory_causes_remote_accesses() {
        let trace = sequential_trace(4 * MIB, 2);
        let config = SimConfig::leap_defaults().with_memory_fraction(0.5);
        let result = VmmSimulator::new(config).run(&trace);
        assert!(result.remote_accesses > 0);
        assert!(result.pages_swapped_out > 0);
        assert_eq!(
            result.total_accesses,
            result.remote_accesses
                + result.first_touch_faults
                + (result.total_accesses - result.remote_accesses - result.first_touch_faults)
        );
    }

    #[test]
    fn leap_beats_default_path_on_stride() {
        let trace = small_stride_trace();
        let linux = VmmSimulator::new(SimConfig::linux_defaults().with_memory_fraction(0.5))
            .run_prepopulated(&trace);
        let leap = VmmSimulator::new(SimConfig::leap_defaults().with_memory_fraction(0.5))
            .run_prepopulated(&trace);
        let mut linux = linux;
        let mut leap = leap;
        assert!(linux.remote_accesses() > 0 && leap.remote_accesses() > 0);
        // Median remote latency improves by well over an order of magnitude
        // (the paper reports up to 104× for Stride-10).
        let linux_median = linux.median_remote_latency().as_nanos() as f64;
        let leap_median = leap.median_remote_latency().as_nanos() as f64;
        assert!(
            linux_median > 5.0 * leap_median,
            "expected a large median gap, got linux={linux_median}ns leap={leap_median}ns"
        );
        // Completion time improves too.
        assert!(leap.completion_time < linux.completion_time);
    }

    #[test]
    fn leap_cache_hit_ratio_is_high_on_regular_patterns() {
        let trace = small_stride_trace();
        let result = VmmSimulator::new(SimConfig::leap_defaults().with_memory_fraction(0.5))
            .run_prepopulated(&trace);
        assert!(
            result.cache_stats.hit_ratio() > 0.7,
            "hit ratio {} too low",
            result.cache_stats.hit_ratio()
        );
        assert!(result.prefetch_stats.coverage() > 0.5);
    }

    #[test]
    fn readahead_fails_on_stride_but_works_on_sequential() {
        let stride = small_stride_trace();
        let seq = sequential_trace(4 * MIB, 1);
        let config = SimConfig::linux_defaults().with_memory_fraction(0.5);
        let stride_result = VmmSimulator::new(config).run_prepopulated(&stride);
        let seq_result = VmmSimulator::new(config).run_prepopulated(&seq);
        assert!(
            seq_result.cache_stats.hit_ratio() > 0.5,
            "sequential hit ratio {}",
            seq_result.cache_stats.hit_ratio()
        );
        assert!(
            stride_result.cache_stats.hit_ratio() < 0.2,
            "stride hit ratio {}",
            stride_result.cache_stats.hit_ratio()
        );
    }

    #[test]
    fn eager_eviction_keeps_the_cache_small() {
        let trace = small_stride_trace();
        let eager = VmmSimulator::new(SimConfig::leap_defaults().with_memory_fraction(0.5))
            .run_prepopulated(&trace);
        let lazy = VmmSimulator::new(
            SimConfig::leap_defaults()
                .with_memory_fraction(0.5)
                .with_eviction(EvictionPolicy::Lazy),
        )
        .run_prepopulated(&trace);
        // Under the lazy policy consumed prefetched pages linger and are
        // eventually reclaimed by the background scanner; under the eager
        // policy they never wait.
        assert!(eager.eviction_wait.is_empty());
        assert!(
            lazy.eviction_wait.len() > 0 || lazy.cache_stats.evictions() == 0,
            "lazy run should observe post-hit waits once reclaim happens"
        );
    }

    #[test]
    fn disk_backend_is_slower_than_rdma() {
        let trace = small_stride_trace();
        let mut hdd =
            VmmSimulator::new(SimConfig::disk_defaults(BackendKind::Hdd).with_memory_fraction(0.5))
                .run_prepopulated(&trace);
        let mut rdma = VmmSimulator::new(SimConfig::linux_defaults().with_memory_fraction(0.5))
            .run_prepopulated(&trace);
        assert!(hdd.median_remote_latency() > rdma.median_remote_latency());
        assert!(hdd.completion_time > rdma.completion_time);
    }

    #[test]
    fn throughput_and_latency_improve_with_more_memory() {
        let model = AppModel::new(AppKind::Memcached, 5).with_accesses(30_000);
        let trace = model.generate();
        let at_25 =
            VmmSimulator::new(SimConfig::leap_defaults().with_memory_fraction(0.25)).run(&trace);
        let at_100 =
            VmmSimulator::new(SimConfig::leap_defaults().with_memory_fraction(1.0)).run(&trace);
        assert!(at_100.completion_time < at_25.completion_time);
        assert!(at_100.throughput_ops_per_sec() > at_25.throughput_ops_per_sec());
    }

    #[test]
    fn constrained_prefetch_cache_still_works() {
        let trace = small_stride_trace();
        let result = VmmSimulator::new(
            SimConfig::leap_defaults()
                .with_memory_fraction(0.5)
                .with_prefetch_cache_pages(64),
        )
        .run_prepopulated(&trace);
        assert!(result.cache_stats.hit_ratio() > 0.3);
        assert!(result.remote_accesses > 0);
    }

    #[test]
    fn no_prefetcher_never_adds_to_cache() {
        let trace = small_stride_trace();
        let result = VmmSimulator::new(
            SimConfig::leap_defaults()
                .with_memory_fraction(0.5)
                .with_prefetcher(PrefetcherKind::None),
        )
        .run_prepopulated(&trace);
        assert_eq!(result.cache_stats.cache_adds(), 0);
        assert_eq!(result.prefetch_stats.pages_prefetched(), 0);
        assert_eq!(result.cache_stats.hits(), 0);
    }

    #[test]
    fn multi_process_run_with_isolation_beats_shared_state() {
        // One well-behaved sequential process plus one random process.
        let seq = sequential_trace(2 * MIB, 2);
        let noisy = AppModel::new(AppKind::Memcached, 11)
            .with_working_set(2 * MIB)
            .with_accesses(seq.len())
            .generate();
        let traces = vec![seq, noisy];
        let schedule = interleave(&traces, 123);

        let isolated = VmmSimulator::new(
            SimConfig::leap_defaults()
                .with_memory_fraction(0.5)
                .with_isolation(true),
        )
        .run_multi(&traces, &schedule);
        let shared = VmmSimulator::new(
            SimConfig::leap_defaults()
                .with_memory_fraction(0.5)
                .with_isolation(false),
        )
        .run_multi(&traces, &schedule);
        assert!(isolated.remote_accesses > 0);
        // Isolation lets the sequential process keep its trend, so overall
        // prefetch coverage is at least as good as with shared state.
        assert!(isolated.prefetch_stats.coverage() >= shared.prefetch_stats.coverage());
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let trace = small_stride_trace();
        let a =
            VmmSimulator::new(SimConfig::leap_defaults().with_seed(77)).run_prepopulated(&trace);
        let b =
            VmmSimulator::new(SimConfig::leap_defaults().with_seed(77)).run_prepopulated(&trace);
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.remote_accesses, b.remote_accesses);
        assert_eq!(a.cache_stats, b.cache_stats);
    }

    #[test]
    fn remote_access_accounting_is_consistent() {
        let trace = small_stride_trace();
        let result = VmmSimulator::new(SimConfig::leap_defaults().with_memory_fraction(0.5))
            .run_prepopulated(&trace);
        // Every remote access is either a cache hit or a miss.
        assert_eq!(
            result.remote_accesses,
            result.cache_stats.hits() + result.cache_stats.misses()
        );
        // Remote-access latency histogram has one sample per remote access.
        assert_eq!(
            result.remote_access_latency.len() as u64,
            result.remote_accesses
        );
        assert_eq!(result.access_latency.len() as u64, result.total_accesses);
    }
}
