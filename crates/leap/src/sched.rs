//! The time-sliced multi-core scheduler driving [`run_multi`].
//!
//! [`run_multi`]: crate::Simulator::run_multi
//!
//! Earlier revisions of `run_multi` replayed a pre-merged schedule at trace
//! granularity — fine for reproducing interference, useless for studying
//! scale-up, because every access of every process marched through one
//! serial timeline. [`CoreScheduler`] models what the kernel actually does
//! with N swapping processes on C cores:
//!
//! - processes are dealt onto **per-core run queues** (a seeded, determinstic
//!   shuffle decides the deal order, so placement is reproducible per seed
//!   but not alphabetical);
//! - each core runs the process at the head of its queue for one
//!   **quantum** of simulated time ([`SimConfig::sched_quantum`]), then
//!   rotates the queue, paying a context-switch cost;
//! - cores advance **independently**: the scheduler always steps the core
//!   whose local clock is furthest behind, so the interleaving of two cores'
//!   accesses emerges from their actual fault latencies rather than from a
//!   fixed merge order.
//!
//! The scheduler is pure bookkeeping — it never touches engine state. The
//! driver loop (in [`crate::Simulator::run_multi`] and
//! [`crate::Session::run_multi`]) asks for the next slot, switches the
//! simulator onto that core, steps one access, and reports the core's new
//! local time back.
//!
//! [`SimConfig::sched_quantum`]: crate::SimConfig::sched_quantum

use leap_sim_core::{DetRng, Nanos};
use std::collections::VecDeque;

/// Default cost of switching a core between processes (register/TLB state
/// plus the scheduler's own bookkeeping; a couple of µs on real hardware).
/// Overridable per run via [`crate::SimConfigBuilder::context_switch_cost`].
pub const CONTEXT_SWITCH: Nanos = Nanos(2_000);

/// One scheduling decision: which process runs its next access, where, when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledSlot {
    /// The core the access runs on.
    pub core: usize,
    /// Index of the process (position in the input trace slice).
    pub process: usize,
    /// Index of the access within the process's trace.
    pub access_index: usize,
    /// The core's local time when the access starts.
    pub now: Nanos,
}

/// Deterministic time-sliced scheduler over per-core run queues.
///
/// # Examples
///
/// ```
/// use leap::sched::CoreScheduler;
/// use leap_sim_core::Nanos;
///
/// // Two processes of 3 accesses each on one core, 1 µs quantum.
/// let mut sched = CoreScheduler::new(&[3, 3], 1, Nanos::from_micros(1), 7);
/// let mut served = 0;
/// while let Some(slot) = sched.next_slot() {
///     // Pretend every access takes 600 ns.
///     sched.completed(&slot, slot.now + Nanos(600));
///     served += 1;
/// }
/// assert_eq!(served, 6);
/// // The makespan covers all six accesses plus the context switches.
/// assert!(sched.completion_time() >= Nanos(3_600));
/// ```
#[derive(Debug, Clone)]
pub struct CoreScheduler {
    quantum: Nanos,
    /// Simulated cost charged per context switch.
    context_switch: Nanos,
    /// Per-core run queues of process indices; the front entry is running.
    queues: Vec<VecDeque<usize>>,
    /// Next access index per process.
    cursors: Vec<usize>,
    /// Trace length per process.
    lens: Vec<usize>,
    /// Each core's local clock.
    core_now: Vec<Nanos>,
    /// Simulated time the running process has consumed of its slice.
    slice_used: Vec<Nanos>,
    /// Total context switches performed (for reporting).
    switches: u64,
}

impl CoreScheduler {
    /// Builds run queues for `lens.len()` processes on `cores` cores.
    ///
    /// Placement deals processes round-robin over the cores in an order
    /// shuffled by a [`DetRng`] seeded from `seed`, so runs are reproducible
    /// per seed while placement is not biased towards trace order.
    pub fn new(lens: &[usize], cores: usize, quantum: Nanos, seed: u64) -> Self {
        CoreScheduler::with_context_switch(lens, cores, quantum, seed, CONTEXT_SWITCH)
    }

    /// Like [`CoreScheduler::new`] with an explicit per-switch cost
    /// ([`crate::SimConfig::context_switch_cost`]).
    pub fn with_context_switch(
        lens: &[usize],
        cores: usize,
        quantum: Nanos,
        seed: u64,
        context_switch: Nanos,
    ) -> Self {
        let cores = cores.max(1);
        let mut order: Vec<usize> = (0..lens.len()).collect();
        let mut rng = DetRng::seed_from(seed ^ 0x5C4E_D01E);
        for i in (1..order.len()).rev() {
            let j = rng.gen_range_usize(0, i + 1);
            order.swap(i, j);
        }
        let mut queues = vec![VecDeque::new(); cores];
        for (i, &process) in order.iter().enumerate() {
            if lens[process] > 0 {
                queues[i % cores].push_back(process);
            }
        }
        CoreScheduler {
            quantum,
            context_switch,
            queues,
            cursors: vec![0; lens.len()],
            lens: lens.to_vec(),
            core_now: vec![Nanos::ZERO; cores],
            slice_used: vec![Nanos::ZERO; cores],
            switches: 0,
        }
    }

    /// The run queue dealt to `core`, front (running) first. Stable once the
    /// scheduler is built; a thread-parallel replay uses it to decide which
    /// processes each shard worker owns.
    pub fn run_queue(&self, core: usize) -> Vec<usize> {
        self.queues[core].iter().copied().collect()
    }

    /// A scheduler that retains only `core`'s run queue (every other core is
    /// left idle with an empty queue).
    ///
    /// A core's schedule — the sequence of `(process, access_index, now)`
    /// slots it serves and its local clock — depends only on its own run
    /// queue, quantum accounting, and the completion times reported for its
    /// own slots; other cores influence nothing but the global interleaving
    /// order. Driving each `isolate(core)` independently therefore yields
    /// exactly the per-core slot sequences of the full scheduler, which is
    /// what lets one OS thread per core replay its shard without
    /// synchronisation ([`crate::parallel`]).
    pub fn isolate(&self, core: usize) -> CoreScheduler {
        let mut isolated = self.clone();
        for (c, queue) in isolated.queues.iter_mut().enumerate() {
            if c != core {
                queue.clear();
            }
        }
        isolated
    }

    /// Number of cores (run queues).
    pub fn cores(&self) -> usize {
        self.queues.len()
    }

    /// The core assigned to `process`, if it still has work queued.
    pub fn core_of(&self, process: usize) -> Option<usize> {
        self.queues
            .iter()
            .position(|q| q.iter().any(|&p| p == process))
    }

    /// Picks the next access to run: the head process of the run queue on
    /// the core whose local clock is furthest behind. Returns `None` when
    /// every process has been fully replayed.
    pub fn next_slot(&mut self) -> Option<ScheduledSlot> {
        let core = (0..self.queues.len())
            .filter(|&c| !self.queues[c].is_empty())
            .min_by_key(|&c| (self.core_now[c], c))?;
        let process = *self.queues[core].front().expect("non-empty queue");
        Some(ScheduledSlot {
            core,
            process,
            access_index: self.cursors[process],
            now: self.core_now[core],
        })
    }

    /// Books the completion of the access previously handed out as `slot`:
    /// advances the core's clock to `now_after`, charges the elapsed time to
    /// the running process's slice, and context-switches when the quantum is
    /// used up or the process finished.
    pub fn completed(&mut self, slot: &ScheduledSlot, now_after: Nanos) {
        let core = slot.core;
        let elapsed = now_after.saturating_sub(slot.now);
        self.core_now[core] = self.core_now[core].max(now_after);
        self.slice_used[core] = self.slice_used[core].saturating_add(elapsed);
        self.cursors[slot.process] += 1;

        let finished = self.cursors[slot.process] >= self.lens[slot.process];
        if finished {
            self.queues[core].pop_front();
            self.slice_used[core] = Nanos::ZERO;
            if !self.queues[core].is_empty() {
                self.context_switch(core);
            }
        } else if self.slice_used[core] >= self.quantum && self.queues[core].len() > 1 {
            self.queues[core].rotate_left(1);
            self.slice_used[core] = Nanos::ZERO;
            self.context_switch(core);
        }
    }

    fn context_switch(&mut self, core: usize) {
        self.core_now[core] = self.core_now[core].saturating_add(self.context_switch);
        self.switches += 1;
    }

    /// Number of context switches performed so far.
    pub fn context_switches(&self) -> u64 {
        self.switches
    }

    /// The replay's makespan: the latest local time over all cores.
    pub fn completion_time(&self) -> Nanos {
        self.core_now.iter().copied().max().unwrap_or(Nanos::ZERO)
    }

    /// Each core's current local time.
    pub fn core_times(&self) -> &[Nanos] {
        &self.core_now
    }
}

/// Drives one full schedule: builds a [`CoreScheduler`] for `lens`
/// processes over `cores` cores, and for every slot calls `step` (which
/// must execute the access and return the core's new local time). Returns
/// the makespan. Shared by `Simulator::run_multi` and
/// `Session::run_multi` so the batch and observed replays cannot drift
/// apart.
pub(crate) fn drive_schedule(
    lens: &[usize],
    cores: usize,
    quantum: Nanos,
    seed: u64,
    context_switch: Nanos,
    mut step: impl FnMut(&ScheduledSlot) -> Nanos,
) -> Nanos {
    let mut sched = CoreScheduler::with_context_switch(lens, cores, quantum, seed, context_switch);
    while let Some(slot) = sched.next_slot() {
        let now_after = step(&slot);
        sched.completed(&slot, now_after);
    }
    sched.completion_time()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(sched: &mut CoreScheduler, per_access: Nanos) -> Vec<ScheduledSlot> {
        let mut slots = Vec::new();
        while let Some(slot) = sched.next_slot() {
            sched.completed(&slot, slot.now + per_access);
            slots.push(slot);
        }
        slots
    }

    #[test]
    fn replays_every_access_in_process_order() {
        let mut sched = CoreScheduler::new(&[5, 3, 4], 2, Nanos::from_micros(10), 1);
        let slots = drain(&mut sched, Nanos(500));
        assert_eq!(slots.len(), 12);
        for p in 0..3 {
            let indices: Vec<usize> = slots
                .iter()
                .filter(|s| s.process == p)
                .map(|s| s.access_index)
                .collect();
            let expected: Vec<usize> = (0..[5, 3, 4][p]).collect();
            assert_eq!(indices, expected, "process {p} accesses out of order");
        }
    }

    #[test]
    fn a_process_stays_on_one_core() {
        let mut sched = CoreScheduler::new(&[50, 50, 50, 50], 2, Nanos::from_micros(5), 9);
        let slots = drain(&mut sched, Nanos(700));
        for p in 0..4 {
            let cores: Vec<usize> = slots
                .iter()
                .filter(|s| s.process == p)
                .map(|s| s.core)
                .collect();
            assert!(
                cores.windows(2).all(|w| w[0] == w[1]),
                "process {p} migrated"
            );
        }
    }

    #[test]
    fn quantum_forces_time_sharing_on_one_core() {
        // Two processes on one core with a quantum worth two accesses: the
        // schedule must alternate in pairs rather than run a whole trace.
        let mut sched = CoreScheduler::new(&[8, 8], 1, Nanos(1_000), 3);
        let slots = drain(&mut sched, Nanos(600));
        let switches = slots
            .windows(2)
            .filter(|w| w[0].process != w[1].process)
            .count();
        assert!(switches >= 6, "only {switches} alternations: {slots:?}");
        assert!(sched.context_switches() >= 6);
    }

    #[test]
    fn cores_advance_independently() {
        // One long and one short process on two cores: the short core goes
        // idle and the makespan equals the long core's time, not the sum.
        let mut sched = CoreScheduler::new(&[100, 10], 2, Nanos::from_micros(50), 5);
        drain(&mut sched, Nanos(1_000));
        let times = sched.core_times().to_vec();
        assert_eq!(
            sched.completion_time(),
            times.iter().copied().max().unwrap()
        );
        assert!(times.iter().copied().min().unwrap() < sched.completion_time());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = drain(
            &mut CoreScheduler::new(&[20, 30, 10], 2, Nanos(5_000), 42),
            Nanos(900),
        );
        let b = drain(
            &mut CoreScheduler::new(&[20, 30, 10], 2, Nanos(5_000), 42),
            Nanos(900),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_placement() {
        // With more processes than cores, some pair of seeds deals the
        // processes differently.
        let placement = |seed| {
            let sched = CoreScheduler::new(&[1, 1, 1, 1, 1], 2, Nanos(1_000), seed);
            (0..5).map(|p| sched.core_of(p)).collect::<Vec<_>>()
        };
        let first = placement(0);
        assert!(
            (1..20).any(|seed| placement(seed) != first),
            "placement never varies with the seed"
        );
    }

    #[test]
    fn isolated_cores_reproduce_their_slice_of_the_global_schedule() {
        // Drain the global scheduler and each isolated core with the same
        // per-access cost: the per-core slot sequences must match exactly.
        let lens = [40, 25, 33, 18, 9];
        let build = || CoreScheduler::new(&lens, 3, Nanos(4_000), 77);
        let global_slots = drain(&mut build(), Nanos(900));
        for core in 0..3 {
            let isolated_slots = drain(&mut build().isolate(core), Nanos(900));
            let global_core: Vec<ScheduledSlot> = global_slots
                .iter()
                .copied()
                .filter(|s| s.core == core)
                .collect();
            assert_eq!(isolated_slots, global_core, "core {core} diverged");
        }
        // And the makespan is the max over the isolated completions.
        let mut global = build();
        drain(&mut global, Nanos(900));
        let isolated_max = (0..3)
            .map(|core| {
                let mut iso = build().isolate(core);
                drain(&mut iso, Nanos(900));
                iso.completion_time()
            })
            .max()
            .unwrap();
        assert_eq!(global.completion_time(), isolated_max);
    }

    #[test]
    fn context_switch_cost_is_configurable() {
        let run = |cost| {
            let mut sched = CoreScheduler::with_context_switch(&[10, 10], 1, Nanos(1_000), 3, cost);
            drain(&mut sched, Nanos(600));
            (sched.context_switches(), sched.completion_time())
        };
        let (switches_free, time_free) = run(Nanos::ZERO);
        let (switches_costly, time_costly) = run(Nanos::from_micros(50));
        // Same schedule shape, but each switch now costs 50 µs of makespan.
        assert_eq!(switches_free, switches_costly);
        assert!(switches_free > 0);
        assert_eq!(
            time_costly,
            time_free + Nanos::from_micros(50) * switches_free,
        );
    }

    #[test]
    fn empty_traces_are_skipped() {
        let mut sched = CoreScheduler::new(&[0, 4, 0], 2, Nanos(1_000), 7);
        let slots = drain(&mut sched, Nanos(100));
        assert_eq!(slots.len(), 4);
        assert!(slots.iter().all(|s| s.process == 1));
        assert!(CoreScheduler::new(&[], 2, Nanos(1_000), 7)
            .next_slot()
            .is_none());
    }
}
