//! The disaggregated-VFS front-end (Remote-Regions-style remote file access).
//!
//! Instead of faulting on anonymous memory, a VFS workload issues explicit
//! file reads and writes at page granularity. Reads are looked up in the VFS
//! page cache first; misses traverse the configured data path to the remote
//! file, and the prefetcher brings neighbouring file pages into the cache.
//! Writes go to the cache and are written back asynchronously. The paper uses
//! this front-end for the Figure 2/7 "D-VFS" latency curves: 1 GB of remote
//! writes followed by 1 GB of remote reads under Sequential and Stride-10
//! patterns.
//!
//! Like the VMM front-end, all cross-cutting machinery lives in the shared
//! engine core; this file models only the VFS cache budget and the
//! read/buffered-write split.

use crate::builder::SimSetup;
use crate::config::SimConfig;
use crate::engine::EngineCore;
use crate::result::RunResult;
use crate::session::{AccessOutcome, FaultEvent, Simulator};
use leap_mem::{MemoryLimit, Pid, SwapSlot};
use leap_prefetcher::PageAddr;
use leap_sim_core::units::PAGE_SIZE;
use leap_sim_core::Nanos;
use leap_workloads::{Access, AccessTrace};

/// Latency of a VFS cache hit (page already cached locally).
const VFS_CACHE_HIT: Nanos = Nanos(800);
/// Cost of looking up the VFS cache before going remote.
const VFS_CACHE_LOOKUP: Nanos = Nanos(270);
/// Software cost of accepting a buffered write into the cache.
const BUFFERED_WRITE: Nanos = Nanos(900);

/// The disaggregated-VFS simulator.
///
/// # Examples
///
/// ```
/// use leap::prelude::*;
/// use leap_sim_core::units::MIB;
///
/// let trace = leap_workloads::sequential_trace(4 * MIB, 1);
/// let result = VfsSimulator::new(SimConfig::leap_defaults()).run(&trace);
/// assert_eq!(result.total_accesses, trace.len() as u64);
/// ```
#[derive(Debug)]
pub struct VfsSimulator {
    engine: EngineCore,
    /// Reusable span scratch (prefetch candidates as swap slots), so reads
    /// never allocate for admission.
    span_slots: Vec<SwapSlot>,
    /// Owner pids running parallel to `span_slots` (all the reading pid:
    /// the VFS caches file pages for whoever read them).
    span_pids: Vec<Pid>,
    /// Replays prefetch admission per candidate instead of per span — the
    /// historical sequencing kept as the reference the span-equivalence
    /// test pins the new path against.
    #[cfg(test)]
    per_candidate_reference: bool,
}

impl VfsSimulator {
    /// Creates a VFS simulator for the given configuration with the built-in
    /// components its enums select.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`SimConfig::validate`]); use
    /// [`SimConfig::builder`] to surface the error instead.
    pub fn new(config: SimConfig) -> Self {
        let setup = SimSetup::from_config(config).expect("invalid SimConfig");
        VfsSimulator::from_setup(&setup)
    }

    /// Creates a simulator from a resolved setup (possibly carrying custom
    /// registry components).
    pub fn from_setup(setup: &SimSetup) -> Self {
        VfsSimulator {
            engine: EngineCore::new(setup, 0xF5),
            span_slots: Vec::new(),
            span_pids: Vec::new(),
            #[cfg(test)]
            per_candidate_reference: false,
        }
    }

    /// A buffered write: lands in the cache and is written back off the
    /// critical path.
    fn buffered_write(&mut self, pid: Pid, page: u64) -> Nanos {
        let slot = SwapSlot(page);
        self.ensure_cache_room(slot);
        self.engine.insert_demand(slot, pid);
        let _ = self.engine.write_remote(page);
        BUFFERED_WRITE
    }

    /// A file read: cache hit or remote fetch plus prefetching. Returns the
    /// latency, outcome, and prefetches issued.
    fn read(&mut self, pid: Pid, page: u64) -> (Nanos, AccessOutcome, u32) {
        let slot = SwapSlot(page);
        self.engine.result.prefetch_stats.record_request();

        if let Some(entry) = self.engine.cache_hit(pid, slot) {
            return (
                VFS_CACHE_HIT,
                AccessOutcome::CacheHit {
                    origin: entry.origin,
                },
                0,
            );
        }

        self.engine.result.cache_stats.record_miss();
        let breakdown = self.engine.read_remote(page);
        let latency = VFS_CACHE_LOOKUP.saturating_add(breakdown.total());

        // Cache the demand-fetched page.
        self.ensure_cache_room(slot);
        self.engine.insert_demand(slot, pid);

        // Prefetch neighbouring file pages, admitted span-at-a-time: the
        // engine probes presence, makes room (under the file-cache budget —
        // `EngineCore::make_cache_space_at` is budget-aware), issues the
        // reads, and inserts, batching the bookkeeping whenever the whole
        // span fits without eviction.
        let decision = self.engine.prefetch_decision(pid, PageAddr(page));
        #[cfg(test)]
        if self.per_candidate_reference {
            let issued = self.admit_per_candidate(pid, &decision);
            return (latency, AccessOutcome::RemoteFetch, issued);
        }
        self.span_slots.clear();
        self.span_slots
            .extend(decision.iter().map(|c| SwapSlot(c.0)));
        self.span_pids.clear();
        self.span_pids.resize(self.span_slots.len(), pid);
        let issued = self
            .engine
            .admit_prefetch_span(&self.span_slots, &self.span_pids);
        (latency, AccessOutcome::RemoteFetch, issued)
    }

    /// The historical per-candidate admission loop (probe, make room, read,
    /// insert — one page at a time). Kept only as the reference the
    /// `span_admission_matches_per_candidate_reference` test replays against
    /// the span-batched path.
    #[cfg(test)]
    fn admit_per_candidate(
        &mut self,
        pid: Pid,
        decision: &leap_prefetcher::PrefetchDecision,
    ) -> u32 {
        let mut issued = 0u32;
        // Like the span path, the reference draws one core per non-empty
        // candidate list and issues every read from it.
        let mut span_core: Option<usize> = None;
        for candidate in decision.iter() {
            let core = match span_core {
                Some(core) => core,
                None => {
                    let core = self.engine.next_core();
                    span_core = Some(core);
                    core
                }
            };
            let cslot = SwapSlot(candidate.0);
            if self.engine.cache.contains(cslot) {
                continue;
            }
            self.ensure_cache_room(cslot);
            let _ = self.engine.read_remote_on(candidate.0, core);
            if self.engine.insert_prefetched(cslot, pid) {
                issued += 1;
            }
        }
        issued
    }

    /// Frees cache space for `slot` when the local file-cache budget or the
    /// configured prefetch cache capacity is exhausted (both live in the
    /// engine; see [`EngineCore::make_cache_space_at`]).
    fn ensure_cache_room(&mut self, slot: SwapSlot) {
        let shard = self.engine.cache.shard_of(slot);
        self.engine.make_cache_space_at(shard);
    }
}

impl Simulator for VfsSimulator {
    fn config(&self) -> &SimConfig {
        &self.engine.config
    }

    fn label(&self) -> &str {
        &self.engine.label
    }

    fn prepare(&mut self, traces: &[AccessTrace]) {
        // The local VFS cache is limited to `memory_fraction` of the total
        // working set, matching how the paper constrains the VMM experiments.
        let total_ws: u64 = traces.iter().map(|t| t.working_set_pages()).sum();
        let budget =
            MemoryLimit::fraction_of(total_ws * PAGE_SIZE, self.engine.config.memory_fraction);
        self.engine.set_cache_budget(budget.limit_pages());
        self.engine
            .stamp_run(format!("vfs-{}", EngineCore::workload_name(traces)));
    }

    /// Prepares a scheduled replay. The VFS keeps one shared cache (its
    /// budget models one file cache, not per-core swap regions) but still
    /// gets per-core trend state and per-core clocks from the engine.
    fn prepare_multi(&mut self, traces: &[AccessTrace]) {
        self.prepare(traces);
        self.engine.enter_scheduled_mode(1, u64::MAX);
    }

    fn now(&self) -> Nanos {
        self.engine.clock.now()
    }

    fn switch_core(&mut self, core: usize, now: Nanos) {
        self.engine.switch_core(core, now);
    }

    fn finish_multi(&mut self, completion: Nanos) {
        self.engine.finish_at(completion);
    }

    fn step_access(&mut self, pid: Pid, access: Access) -> FaultEvent {
        self.engine.begin_access(&access);
        let (latency, outcome, prefetches_issued) = if access.is_write {
            (
                self.buffered_write(pid, access.page),
                AccessOutcome::BufferedWrite,
                0,
            )
        } else {
            self.read(pid, access.page)
        };
        // The paper's D-VFS curves count every file access as a remote
        // access (the file itself lives remotely).
        self.engine.result.remote_accesses += 1;
        self.engine
            .complete_access(pid, access, outcome, latency, prefetches_issued)
    }

    fn into_result(self) -> RunResult {
        self.engine.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvictionPolicy;
    use leap_sim_core::units::MIB;
    use leap_workloads::{sequential_trace, stride_trace};

    fn leap_at(fraction: f64) -> SimConfig {
        SimConfig::builder()
            .memory_fraction(fraction)
            .build()
            .unwrap()
    }

    #[test]
    fn sequential_reads_mostly_hit_after_warmup() {
        let trace = sequential_trace(4 * MIB, 1);
        let result = VfsSimulator::new(SimConfig::leap_defaults()).run(&trace);
        assert_eq!(result.total_accesses, 1024);
        assert!(
            result.cache_stats.hit_ratio() > 0.6,
            "hit ratio {}",
            result.cache_stats.hit_ratio()
        );
    }

    #[test]
    fn leap_improves_stride_latency_over_default_vfs() {
        let trace = stride_trace(4 * MIB, 10, 1);
        let mut default = VfsSimulator::new(SimConfig::linux_defaults()).run(&trace);
        let mut leap = VfsSimulator::new(SimConfig::leap_defaults()).run(&trace);
        assert!(
            default.median_remote_latency() > leap.median_remote_latency(),
            "default {} vs leap {}",
            default.median_remote_latency(),
            leap.median_remote_latency()
        );
        assert!(default.completion_time > leap.completion_time);
    }

    #[test]
    fn writes_are_buffered_and_cheap() {
        let accesses = (0..256u64)
            .map(|p| Access::write(p, Nanos::ZERO))
            .collect::<Vec<_>>();
        let trace = AccessTrace::new("writes", accesses);
        let mut result = VfsSimulator::new(SimConfig::leap_defaults()).run(&trace);
        assert_eq!(result.total_accesses, 256);
        // Buffered writes do not traverse the read path.
        assert!(result.median_remote_latency() < Nanos::from_micros(5));
    }

    #[test]
    fn write_then_read_hits_the_cache() {
        // Write a small region, then read it back: reads of recently written
        // pages are served from the VFS cache.
        let mut accesses: Vec<Access> = (0..64u64).map(|p| Access::write(p, Nanos::ZERO)).collect();
        accesses.extend((0..64u64).map(|p| Access::read(p, Nanos::ZERO)));
        let trace = AccessTrace::new("write-read", accesses);
        let result = VfsSimulator::new(leap_at(1.0)).run(&trace);
        assert!(result.cache_stats.demand_hits() >= 32);
    }

    #[test]
    fn constrained_cache_still_completes() {
        let trace = stride_trace(4 * MIB, 10, 1);
        let config = SimConfig::builder()
            .memory_fraction(0.25)
            .prefetch_cache_pages(32)
            .build()
            .unwrap();
        let result = VfsSimulator::new(config).run(&trace);
        assert_eq!(result.total_accesses, 1024);
        assert!(result.cache_stats.evictions() > 0);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let trace = stride_trace(2 * MIB, 10, 1);
        let config = SimConfig::builder().seed(5).build().unwrap();
        let a = VfsSimulator::new(config).run(&trace);
        let b = VfsSimulator::new(config).run(&trace);
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.cache_stats, b.cache_stats);
    }

    /// The span-batched prefetch admission must be observably identical to
    /// the historical per-candidate loop: every counter, every latency
    /// distribution, across budgets and eviction pressure.
    #[test]
    fn span_admission_matches_per_candidate_reference() {
        use leap_sim_core::units::KIB;
        use leap_workloads::{AppKind, AppModel};

        let mut workloads = vec![
            stride_trace(4 * MIB, 10, 1),
            sequential_trace(4 * MIB, 2),
            AppModel::new(AppKind::PowerGraph, 17)
                .with_working_set(2 * MIB)
                .with_accesses(3_000)
                .generate(),
        ];
        // A write-heavy mix exercises the buffered-write room-making too.
        let mut mixed: Vec<Access> = (0..256u64).map(|p| Access::write(p, Nanos::ZERO)).collect();
        mixed.extend((0..512u64).map(|p| Access::read(p, Nanos::from_nanos(120))));
        workloads.push(AccessTrace::new("mixed", mixed));

        let configs = vec![
            SimConfig::leap_defaults(),
            SimConfig::linux_defaults(),
            leap_at(0.25),
            leap_at(1.0),
            // A tightly bounded prefetch cache forces the careful
            // (eviction-interleaved) admission path.
            SimConfig::builder()
                .memory_fraction(0.5)
                .prefetch_cache_pages(32)
                .build()
                .unwrap(),
            SimConfig::builder()
                .eviction(EvictionPolicy::Lazy)
                .memory_fraction(0.5)
                .build()
                .unwrap(),
            // A tiny working-set fraction keeps the budget, not the shard
            // capacity, the binding constraint.
            SimConfig::builder()
                .memory_fraction(0.5)
                .prefetch_cache_pages(16 * KIB)
                .build()
                .unwrap(),
        ];

        for trace in &workloads {
            for config in &configs {
                let mut span = VfsSimulator::new(*config).run(trace);
                let mut reference = {
                    let mut sim = VfsSimulator::new(*config);
                    sim.per_candidate_reference = true;
                    sim.run(trace)
                };
                assert_eq!(
                    span.completion_time,
                    reference.completion_time,
                    "completion diverged: {} under {}",
                    trace.name(),
                    config.label()
                );
                assert_eq!(span.total_accesses, reference.total_accesses);
                assert_eq!(span.remote_accesses, reference.remote_accesses);
                assert_eq!(span.cache_stats, reference.cache_stats);
                assert_eq!(
                    span.prefetch_stats.pages_prefetched(),
                    reference.prefetch_stats.pages_prefetched()
                );
                assert_eq!(
                    span.prefetch_stats.prefetch_hits(),
                    reference.prefetch_stats.prefetch_hits()
                );
                assert_eq!(
                    span.access_latency.sorted_samples(),
                    reference.access_latency.sorted_samples()
                );
                assert_eq!(
                    span.remote_access_latency.sorted_samples(),
                    reference.remote_access_latency.sorted_samples()
                );
                assert_eq!(
                    span.eviction_wait.sorted_samples(),
                    reference.eviction_wait.sorted_samples()
                );
            }
        }
    }

    #[test]
    fn lazy_vfs_still_works() {
        let trace = stride_trace(2 * MIB, 10, 1);
        let config = SimConfig::builder()
            .eviction(EvictionPolicy::Lazy)
            .memory_fraction(0.5)
            .build()
            .unwrap();
        let result = VfsSimulator::new(config).run(&trace);
        assert_eq!(result.total_accesses, trace.len() as u64);
    }
}
