//! The disaggregated-VFS front-end (Remote-Regions-style remote file access).
//!
//! Instead of faulting on anonymous memory, a VFS workload issues explicit
//! file reads and writes at page granularity. Reads are looked up in the VFS
//! page cache first; misses traverse the configured data path to the remote
//! file, and the prefetcher brings neighbouring file pages into the cache.
//! Writes go to the cache and are written back asynchronously. The paper uses
//! this front-end for the Figure 2/7 "D-VFS" latency curves: 1 GB of remote
//! writes followed by 1 GB of remote reads under Sequential and Stride-10
//! patterns.

use crate::config::{DataPathKind, EvictionPolicy, SimConfig};
use crate::result::RunResult;
use crate::tracker::PageAccessTracker;
use leap_datapath::{DataPath, LeanDataPath, LegacyDataPath};
use leap_eviction::{LazyReclaimer, PrefetchFifoLru};
use leap_mem::{CacheOrigin, MemoryLimit, Pid, SwapCache, SwapSlot};
use leap_prefetcher::PageAddr;
use leap_remote::{HostAgent, HostAgentConfig, RemoteCluster};
use leap_sim_core::units::PAGE_SIZE;
use leap_sim_core::{DetRng, Nanos, SimClock};
use leap_workloads::{Access, AccessTrace};

/// Latency of a VFS cache hit (page already cached locally).
const VFS_CACHE_HIT: Nanos = Nanos(800);
/// Cost of looking up the VFS cache before going remote.
const VFS_CACHE_LOOKUP: Nanos = Nanos(270);
/// Software cost of accepting a buffered write into the cache.
const BUFFERED_WRITE: Nanos = Nanos(900);

/// The disaggregated-VFS simulator.
///
/// # Examples
///
/// ```
/// use leap::prelude::*;
/// use leap_sim_core::units::MIB;
///
/// let trace = leap_workloads::sequential_trace(4 * MIB, 1);
/// let result = VfsSimulator::new(SimConfig::leap_defaults()).run(&trace);
/// assert_eq!(result.total_accesses, trace.len() as u64);
/// ```
#[derive(Debug)]
pub struct VfsSimulator {
    config: SimConfig,
    clock: SimClock,
    cache: SwapCache,
    cache_budget: MemoryLimit,
    tracker: PageAccessTracker,
    data_path: Box<dyn DataPath>,
    lazy: LazyReclaimer,
    eager: PrefetchFifoLru,
    result: RunResult,
    core_cursor: usize,
    rng: DetRng,
}

impl VfsSimulator {
    /// Creates a VFS simulator for the given configuration.
    pub fn new(config: SimConfig) -> Self {
        let mut rng = DetRng::seed_from(config.seed ^ 0xF5);
        let data_path: Box<dyn DataPath> = match config.data_path {
            DataPathKind::LinuxDefault => Box::new(LegacyDataPath::new(config.backend, rng.fork())),
            DataPathKind::Leap => {
                let agent = HostAgent::new(
                    HostAgentConfig {
                        cores: config.cores,
                        backend: config.backend,
                        ..HostAgentConfig::default()
                    },
                    RemoteCluster::homogeneous(4, 256),
                    rng.fork(),
                );
                Box::new(LeanDataPath::new(agent, rng.fork()))
            }
        };
        VfsSimulator {
            clock: SimClock::new(),
            cache: SwapCache::new(config.prefetch_cache_pages),
            cache_budget: MemoryLimit::from_pages(u64::MAX / 2),
            tracker: PageAccessTracker::new(
                config.prefetcher,
                config.history_size,
                config.max_prefetch_window,
                config.per_process_isolation,
            ),
            data_path,
            lazy: LazyReclaimer::with_defaults(),
            eager: PrefetchFifoLru::new(),
            result: RunResult::default(),
            core_cursor: 0,
            rng,
            config,
        }
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replays a trace of file reads/writes against the remote file.
    ///
    /// The local VFS cache is limited to `memory_fraction` of the trace's
    /// working set, matching how the paper constrains the VMM experiments.
    pub fn run(mut self, trace: &AccessTrace) -> RunResult {
        self.cache_budget = MemoryLimit::fraction_of(
            trace.working_set_pages() * PAGE_SIZE,
            self.config.memory_fraction,
        );
        self.result.workload = format!("vfs-{}", trace.name());
        self.result.config_label = self.config.label();
        // The paper's D-VFS microbenchmark writes the region remotely first
        // and then reads it back; model that by treating the first access to
        // each page as the remote write.
        for access in trace.iter() {
            self.step(*access);
        }
        self.result.completion_time = self.clock.now();
        self.result
    }

    fn next_core(&mut self) -> usize {
        self.core_cursor = (self.core_cursor + 1) % self.config.cores.max(1);
        self.core_cursor
    }

    fn step(&mut self, access: Access) {
        self.clock.advance(access.compute);
        self.result.total_accesses += 1;
        let latency = if access.is_write {
            self.buffered_write(access.page)
        } else {
            self.read(access.page)
        };
        self.clock.advance(latency);
        self.result.access_latency.record(latency);
        self.result.remote_access_latency.record(latency);
        self.result.remote_accesses += 1;
    }

    /// A buffered write: lands in the cache and is written back off the
    /// critical path.
    fn buffered_write(&mut self, page: u64) -> Nanos {
        let now = self.clock.now();
        let slot = SwapSlot(page);
        self.ensure_cache_room();
        if self.cache.insert(slot, Pid(1), CacheOrigin::Demand, now) {
            self.lazy.on_insert(slot);
        }
        let core = self.next_core();
        let _ = self.data_path.write_page(page, core, now);
        BUFFERED_WRITE
    }

    /// A file read: cache hit or remote fetch plus prefetching.
    fn read(&mut self, page: u64) -> Nanos {
        let now = self.clock.now();
        let slot = SwapSlot(page);
        self.result.prefetch_stats.record_request();

        if let Some(entry) = self.cache.record_hit(slot, now) {
            if entry.origin == CacheOrigin::Prefetch {
                self.result.cache_stats.record_prefetch_hit();
                self.result
                    .prefetch_stats
                    .record_prefetch_hit(now.saturating_sub(entry.inserted_at));
                self.tracker.on_prefetch_hit(Pid(1), PageAddr(page));
                if self.config.eviction == EvictionPolicy::Eager {
                    self.eager.on_hit(slot, &mut self.cache);
                    self.lazy.on_remove(slot);
                    self.cache_budget.uncharge(1);
                } else {
                    self.lazy.on_hit(slot);
                }
            } else {
                self.result.cache_stats.record_demand_hit();
                self.lazy.on_hit(slot);
            }
            return VFS_CACHE_HIT;
        }

        self.result.cache_stats.record_miss();
        let core = self.next_core();
        let breakdown = self.data_path.read_page(page, core, now);
        let latency = VFS_CACHE_LOOKUP.saturating_add(breakdown.total());

        // Cache the demand-fetched page.
        self.ensure_cache_room();
        if self.cache.insert(slot, Pid(1), CacheOrigin::Demand, now) {
            self.lazy.on_insert(slot);
        }

        // Prefetch neighbouring file pages.
        let decision = self.tracker.on_fault(Pid(1), PageAddr(page));
        for candidate in &decision.prefetch {
            let cslot = SwapSlot(candidate.0);
            if self.cache.contains(cslot) {
                continue;
            }
            self.ensure_cache_room();
            let core = self.next_core();
            let _ = self.data_path.read_page(candidate.0, core, now);
            if self.cache.insert(cslot, Pid(1), CacheOrigin::Prefetch, now) {
                self.result.cache_stats.record_add(1);
                self.result.prefetch_stats.record_prefetched(1);
                self.eager.on_prefetch_insert(cslot);
                self.lazy.on_insert(cslot);
            }
        }
        latency
    }

    /// Frees cache space when the local budget or the configured prefetch
    /// cache capacity is exhausted.
    fn ensure_cache_room(&mut self) {
        let over_budget = self.cache.len() >= self.cache_budget.limit_pages();
        if !self.cache.is_full() && !over_budget {
            return;
        }
        let now = self.clock.now();
        match self.config.eviction {
            EvictionPolicy::Eager => {
                let victims = self.eager.reclaim_fifo(&mut self.cache, 1);
                for v in &victims {
                    self.lazy.on_remove(*v);
                    self.result.cache_stats.record_eviction(true);
                }
                if victims.is_empty() {
                    // No unconsumed prefetches: fall back to an LRU reclaim.
                    let outcome = self.lazy.reclaim(&mut self.cache, 1, now);
                    for _ in &outcome.freed {
                        self.result.cache_stats.record_eviction(false);
                    }
                }
            }
            EvictionPolicy::Lazy => {
                let outcome = self.lazy.reclaim(&mut self.cache, 1, now);
                for wait in &outcome.post_hit_wait {
                    self.result.eviction_wait.record(*wait);
                }
                for _ in 0..outcome.freed_unused_prefetches {
                    self.result.cache_stats.record_eviction(true);
                }
                for _ in 0..(outcome.freed.len() as u64 - outcome.freed_unused_prefetches) {
                    self.result.cache_stats.record_eviction(false);
                }
            }
        }
        let _ = self.rng.next_u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_sim_core::units::MIB;
    use leap_workloads::{sequential_trace, stride_trace};

    #[test]
    fn sequential_reads_mostly_hit_after_warmup() {
        let trace = sequential_trace(4 * MIB, 1);
        let result = VfsSimulator::new(SimConfig::leap_defaults()).run(&trace);
        assert_eq!(result.total_accesses, 1024);
        assert!(
            result.cache_stats.hit_ratio() > 0.6,
            "hit ratio {}",
            result.cache_stats.hit_ratio()
        );
    }

    #[test]
    fn leap_improves_stride_latency_over_default_vfs() {
        let trace = stride_trace(4 * MIB, 10, 1);
        let mut default = VfsSimulator::new(SimConfig::linux_defaults()).run(&trace);
        let mut leap = VfsSimulator::new(SimConfig::leap_defaults()).run(&trace);
        assert!(
            default.median_remote_latency() > leap.median_remote_latency(),
            "default {} vs leap {}",
            default.median_remote_latency(),
            leap.median_remote_latency()
        );
        assert!(default.completion_time > leap.completion_time);
    }

    #[test]
    fn writes_are_buffered_and_cheap() {
        let accesses = (0..256u64)
            .map(|p| Access::write(p, Nanos::ZERO))
            .collect::<Vec<_>>();
        let trace = AccessTrace::new("writes", accesses);
        let mut result = VfsSimulator::new(SimConfig::leap_defaults()).run(&trace);
        assert_eq!(result.total_accesses, 256);
        // Buffered writes do not traverse the read path.
        assert!(result.median_remote_latency() < Nanos::from_micros(5));
    }

    #[test]
    fn write_then_read_hits_the_cache() {
        // Write a small region, then read it back: reads of recently written
        // pages are served from the VFS cache.
        let mut accesses: Vec<Access> = (0..64u64).map(|p| Access::write(p, Nanos::ZERO)).collect();
        accesses.extend((0..64u64).map(|p| Access::read(p, Nanos::ZERO)));
        let trace = AccessTrace::new("write-read", accesses);
        let result =
            VfsSimulator::new(SimConfig::leap_defaults().with_memory_fraction(1.0)).run(&trace);
        assert!(result.cache_stats.demand_hits() >= 32);
    }

    #[test]
    fn constrained_cache_still_completes() {
        let trace = stride_trace(4 * MIB, 10, 1);
        let result = VfsSimulator::new(
            SimConfig::leap_defaults()
                .with_memory_fraction(0.25)
                .with_prefetch_cache_pages(32),
        )
        .run(&trace);
        assert_eq!(result.total_accesses, 1024);
        assert!(result.cache_stats.evictions() > 0);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let trace = stride_trace(2 * MIB, 10, 1);
        let a = VfsSimulator::new(SimConfig::leap_defaults().with_seed(5)).run(&trace);
        let b = VfsSimulator::new(SimConfig::leap_defaults().with_seed(5)).run(&trace);
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.cache_stats, b.cache_stats);
    }
}
