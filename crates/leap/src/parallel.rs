//! Thread-parallel replay over per-core shard workers.
//!
//! PR 2 sharded every piece of per-core engine state (swap regions, cache
//! shards, evictors, prefetcher trend state, clocks) but still stepped all of
//! it from one OS thread. This module finishes the job: a scheduled
//! multi-process replay is executed by **shard workers** — one self-contained
//! engine slice per core, owning its cache shard, eviction policy, swap
//! region, `(pid, core)` trend state, clock, and its own deterministic data
//! path RNG stream — and the configured [`ReplayMode`] decides what drives
//! them:
//!
//! - [`ReplayMode::Serial`]: one thread steps the workers in the global
//!   time-sliced scheduler's interleaving (the reference implementation).
//! - [`ReplayMode::Threaded`]: one OS thread per worker, each driving the
//!   scheduler restricted to its own core ([`CoreScheduler::isolate`]).
//!
//! # Determinism
//!
//! The two modes are bit-identical for a seed because nothing a worker
//! computes depends on any other worker:
//!
//! 1. **Schedules are per-core independent.** A core's run queue is dealt
//!    once up front from the seed; rotations depend only on that core's
//!    quantum accounting and its own access completion times. The global
//!    scheduler's min-clock scan only chooses the *interleaving order* of
//!    cores, never what any core does (see [`CoreScheduler::isolate`]).
//! 2. **Worker state is share-nothing.** Processes are pinned to one core
//!    for their lifetime, so page tables, swap slots (allocated from the
//!    core's own region), cache entries, and trend state are only ever
//!    touched by their own worker. Prefetch candidates that would fall into
//!    a foreign core's slot region are unowned there by construction
//!    (regions are allocated bottom-up and are ~2⁶¹ slots wide), so both
//!    modes skip them identically.
//! 3. **Aggregation order is fixed.** Each worker buffers its
//!    sequence-stamped [`FaultEvent`]s locally; after the join the buffers
//!    are merged in `(core, seq)` order and partial [`RunResult`]s are
//!    folded in ascending core order, so observers and aggregates see one
//!    canonical order in both modes.
//!
//! `tests/parallel_equivalence.rs` pins all three properties.

use crate::result::RunResult;
use crate::sched::CoreScheduler;
use crate::session::{EventRing, FaultEvent, Observer};
use leap_mem::Pid;
use leap_sim_core::Nanos;
use leap_workloads::AccessTrace;

pub use crate::config::ReplayMode;

/// One per-core shard of a simulator, steppable independently of every other
/// shard. Implemented by front-ends that support thread-parallel replay (the
/// VMM); [`crate::Simulator::run_multi`] drives shards through the replay
/// machinery of this module.
pub trait CoreWorker: Send {
    /// Executes one access of `pid` on this worker's core.
    fn step(&mut self, pid: Pid, access: leap_workloads::Access) -> FaultEvent;

    /// Advances the worker's clock to the scheduler-provided start instant
    /// of its next access (monotonic within a core).
    fn sync_clock(&mut self, now: Nanos);

    /// The worker's core-local clock.
    fn local_now(&self) -> Nanos;

    /// Consumes the worker, yielding its partial result.
    fn into_partial(self) -> RunResult;
}

/// Everything a sharded replay produces before aggregation: the per-core
/// sequence-stamped event buffers, the per-core partial results, and the
/// makespan.
pub(crate) struct ShardOutcome {
    /// Per-core event buffers; `events[c][i].seq == i` within core `c`.
    pub events: Vec<Vec<FaultEvent>>,
    /// Per-core partial results, index = core.
    pub partials: Vec<RunResult>,
    /// The replay's makespan (latest core-local time incl. context switches).
    pub completion: Nanos,
}

/// Replays `traces` over `workers` in the given mode. The scheduler must be
/// freshly built (no slots handed out yet). `record_events` gates the
/// per-core event buffers: with no observers attached there is no reader,
/// so buffering millions of events would only inflate peak RSS.
pub(crate) fn replay<W: CoreWorker>(
    mode: ReplayMode,
    workers: Vec<W>,
    traces: &[AccessTrace],
    sched: CoreScheduler,
    record_events: bool,
) -> ShardOutcome {
    match mode {
        ReplayMode::Serial => replay_serial(workers, traces, sched, record_events),
        ReplayMode::Threaded => replay_threaded(workers, traces, &sched, record_events),
    }
}

/// Drives one worker with a scheduler that only has that worker's core
/// populated, buffering the core's events. Returns the events, the partial
/// result, and the core's completion time.
fn drive_worker<W: CoreWorker>(
    mut worker: W,
    core: usize,
    traces: &[AccessTrace],
    mut local: CoreScheduler,
    record_events: bool,
) -> (Vec<FaultEvent>, RunResult, Nanos) {
    let capacity: usize = if record_events {
        local.run_queue(core).iter().map(|&p| traces[p].len()).sum()
    } else {
        0
    };
    let mut events = Vec::with_capacity(capacity);
    while let Some(slot) = local.next_slot() {
        debug_assert_eq!(slot.core, core, "isolated scheduler left its core");
        worker.sync_clock(slot.now);
        let access = traces[slot.process].accesses()[slot.access_index];
        let event = worker.step(Pid(slot.process as u32 + 1), access);
        if record_events {
            events.push(event);
        }
        local.completed(&slot, worker.local_now());
    }
    (events, worker.into_partial(), local.completion_time())
}

/// The serial reference: one thread steps all workers, interleaved by the
/// global scheduler (always the core whose local clock is furthest behind).
fn replay_serial<W: CoreWorker>(
    mut workers: Vec<W>,
    traces: &[AccessTrace],
    mut sched: CoreScheduler,
    record_events: bool,
) -> ShardOutcome {
    let mut events: Vec<Vec<FaultEvent>> = (0..workers.len())
        .map(|core| {
            if record_events {
                Vec::with_capacity(sched.run_queue(core).iter().map(|&p| traces[p].len()).sum())
            } else {
                Vec::new()
            }
        })
        .collect();
    while let Some(slot) = sched.next_slot() {
        let worker = &mut workers[slot.core];
        worker.sync_clock(slot.now);
        let access = traces[slot.process].accesses()[slot.access_index];
        let event = worker.step(Pid(slot.process as u32 + 1), access);
        if record_events {
            events[slot.core].push(event);
        }
        sched.completed(&slot, worker.local_now());
    }
    ShardOutcome {
        events,
        partials: workers.into_iter().map(CoreWorker::into_partial).collect(),
        completion: sched.completion_time(),
    }
}

/// The thread-parallel replay: one scoped OS thread per shard worker, each
/// driving [`CoreScheduler::isolate`] of its core to completion; joined in
/// core order.
fn replay_threaded<W: CoreWorker>(
    workers: Vec<W>,
    traces: &[AccessTrace],
    sched: &CoreScheduler,
    record_events: bool,
) -> ShardOutcome {
    let per_core = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(core, worker)| {
                let local = sched.isolate(core);
                scope.spawn(move || drive_worker(worker, core, traces, local, record_events))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("shard worker thread panicked"))
            .collect::<Vec<_>>()
    });
    let mut events = Vec::with_capacity(per_core.len());
    let mut partials = Vec::with_capacity(per_core.len());
    let mut completion = Nanos::ZERO;
    for (core_events, partial, core_completion) in per_core {
        events.push(core_events);
        partials.push(partial);
        completion = completion.max(core_completion);
    }
    ShardOutcome {
        events,
        partials,
        completion,
    }
}

/// Aggregates a sharded replay: folds the partial results in core order,
/// stamps the metadata and makespan, and delivers the merged `(core, seq)`
/// event stream to `observers` through the batched [`EventRing`].
pub(crate) fn finish_sharded(
    config_label: String,
    workload: String,
    outcome: ShardOutcome,
    observers: &mut [&mut dyn Observer],
) -> RunResult {
    let mut result = RunResult {
        config_label,
        workload,
        ..RunResult::default()
    };
    for partial in outcome.partials {
        result.absorb_shard(partial);
    }
    result.completion_time = outcome.completion;

    if !observers.is_empty() {
        // The per-core buffers are already contiguous and in (core, seq)
        // order, so batches are delivered by slicing them directly — the
        // same batched-`on_batch` contract as the [`EventRing`], with zero
        // additional copies.
        for core_events in &outcome.events {
            for chunk in core_events.chunks(EventRing::DEFAULT_BATCH) {
                for observer in observers.iter_mut() {
                    observer.on_batch(chunk);
                }
            }
        }
    }
    result
}
