//! The shared fault-engine core.
//!
//! Everything the two front-ends ([`crate::VmmSimulator`],
//! [`crate::VfsSimulator`]) have in common lives here: the simulation clock,
//! the (possibly per-core sharded) swap/prefetch cache, the per-process
//! prefetcher tracker, the data path, the per-shard eviction policies,
//! result accumulation, and the core bookkeeping. The front-ends keep only
//! what genuinely differs — page tables, swap space and cgroup limits for
//! the VMM; the cache budget for the VFS — and drive the core through the
//! helpers below, so hit/miss accounting and eviction bookkeeping are
//! implemented exactly once.
//!
//! Single-process replays run the core in its legacy layout: one cache
//! shard, one evictor, one monotonic clock. Scheduled multi-process replays
//! ([`crate::Simulator::run_multi`]) call
//! [`EngineCore::enter_scheduled_mode`] first, which reshapes the cache into
//! per-core shards, builds one eviction-policy instance per shard, switches
//! the tracker to per-core trend state, and lets the scheduler drive the
//! clock per core via [`EngineCore::switch_core`].

use crate::builder::SimSetup;
use crate::components::ResolvedComponents;
use crate::config::SimConfig;
use crate::pipeline::{AsyncPipeline, IoKind};
use crate::result::RunResult;
use crate::session::{AccessOutcome, FaultEvent};
use crate::stage_timing::{self, Stage};
use crate::tracker::PageAccessTracker;
use leap_datapath::{DataPath, PathLatency};
use leap_eviction::{CacheEvictor, EvictionReport};
use leap_mem::{CacheEntry, CacheOrigin, MemoryLimit, Pid, ShardedSwapCache, SwapSlot};
use leap_prefetcher::PageAddr;
use leap_sim_core::hash::FxHashMap;
use leap_sim_core::{DetRng, Nanos, SimClock};
use leap_workloads::{Access, AccessTrace};

/// Shared state and bookkeeping of one simulation run.
#[derive(Debug)]
pub(crate) struct EngineCore {
    pub config: SimConfig,
    pub label: String,
    pub clock: SimClock,
    pub cache: ShardedSwapCache,
    pub tracker: PageAccessTracker,
    pub data_path: Box<dyn DataPath>,
    pub evictors: Vec<Box<dyn CacheEvictor>>,
    pub result: RunResult,
    pub seq: u64,
    /// The resolved component factories, kept so scheduled replays can build
    /// fresh per-core shard workers (one data path, evictor, and tracker per
    /// worker).
    components: ResolvedComponents,
    /// Salt decorrelating this front-end's random streams (and those of its
    /// shard workers) from other front-ends under the same seed.
    rng_salt: u64,
    core_cursor: usize,
    active_core: usize,
    scheduled: bool,
    /// Whole-cache page budget on top of the per-shard capacities (the VFS
    /// front-end's local file-cache limit). `None` — the VMM's setting —
    /// skips the budget check entirely on the hot path.
    cache_budget: Option<u64>,
    /// This shard's async I/O submission queue: prefetch reads and
    /// write-backs go through it so the in-flight budget
    /// ([`SimConfig::async_depth`]) can stall the submitter once the
    /// asynchrony runs out.
    pipeline: AsyncPipeline,
    /// Pipeline stall accumulated since the front-end last collected it via
    /// [`EngineCore::take_pending_stall`] (charged to the faulting access).
    pending_stall: Nanos,
    /// Per-tenant cgroup-style memory limits: the engine's eviction
    /// accounting ledger. Front-ends register each process's
    /// [`MemoryLimit`] here and charge/uncharge residency through the
    /// engine, so budget enforcement and per-tenant eviction counts live in
    /// one place.
    tenant_limits: FxHashMap<Pid, MemoryLimit>,
    /// Reusable scratch for span-batched prefetch admission (slots admitted
    /// this span), so the fault hot path never allocates for it.
    span_scratch: Vec<SwapSlot>,
    /// Owner pids running parallel to `span_scratch`.
    owner_scratch: Vec<Pid>,
    /// Per-slot presence mask for the span's batched probe.
    present_scratch: Vec<bool>,
    /// Page offsets of the admitted span, handed to the data path's span
    /// read in one call.
    page_scratch: Vec<u64>,
    /// Per-read totals the data path's span read fills in, replayed into
    /// the async pipeline in page order.
    total_scratch: Vec<Nanos>,
}

impl EngineCore {
    /// Builds the core from a resolved setup. `rng_salt` decorrelates the
    /// front-ends' random streams for the same seed (the VFS front-end
    /// historically salts with `0xF5`).
    pub fn new(setup: &SimSetup, rng_salt: u64) -> Self {
        let config = setup.config;
        let mut rng = DetRng::seed_from(config.seed ^ rng_salt);
        let components = setup.components().clone();
        EngineCore {
            clock: SimClock::new(),
            cache: ShardedSwapCache::single(config.prefetch_cache_pages),
            tracker: PageAccessTracker::new(components.prefetcher.clone(), &config),
            data_path: components.data_path.build(&config, &mut rng),
            evictors: vec![components.eviction.build(&config)],
            result: RunResult::default(),
            seq: 0,
            components,
            rng_salt,
            core_cursor: 0,
            active_core: 0,
            scheduled: false,
            cache_budget: None,
            pipeline: AsyncPipeline::new(config.async_depth),
            pending_stall: Nanos::ZERO,
            tenant_limits: FxHashMap::default(),
            span_scratch: Vec::new(),
            owner_scratch: Vec::new(),
            present_scratch: Vec::new(),
            page_scratch: Vec::new(),
            total_scratch: Vec::new(),
            label: setup.label(),
            config,
        }
    }

    /// Builds the engine slice a per-core shard worker owns in a scheduled
    /// replay of `shards` cores: one cache shard (the bounded capacity split
    /// evenly, never below one full prefetch window), one eviction-policy
    /// instance, per-core prefetcher trend state pinned to `core`, a fresh
    /// per-core clock, and this worker's own data path fed from a
    /// deterministic per-core [`DetRng`] stream.
    ///
    /// Worker engines are what both replay modes
    /// ([`crate::config::ReplayMode`]) execute, so the serial reference and
    /// the thread-parallel replay step literally the same state.
    pub fn shard_worker(&self, core: usize, shards: usize) -> EngineCore {
        let config = self.config;
        let per_shard = if config.prefetch_cache_pages == u64::MAX {
            u64::MAX
        } else {
            (config.prefetch_cache_pages / shards as u64).max(config.max_prefetch_window as u64)
        };
        // One independent random stream per core: golden-ratio stride keeps
        // the per-core seeds far apart for any (seed, salt) pair.
        let mut rng = DetRng::seed_from(
            config.seed ^ self.rng_salt ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(core as u64 + 1),
        );
        let mut tracker = PageAccessTracker::new(self.components.prefetcher.clone(), &config);
        tracker.set_per_core(true);
        EngineCore {
            clock: SimClock::new(),
            cache: ShardedSwapCache::single(per_shard),
            tracker,
            data_path: self.components.data_path.build(&config, &mut rng),
            evictors: vec![self.components.eviction.build(&config)],
            result: RunResult::default(),
            seq: 0,
            components: self.components.clone(),
            rng_salt: self.rng_salt,
            core_cursor: 0,
            active_core: core,
            scheduled: true,
            cache_budget: self.cache_budget,
            pipeline: AsyncPipeline::new(config.async_depth),
            pending_stall: Nanos::ZERO,
            tenant_limits: FxHashMap::default(),
            span_scratch: Vec::new(),
            owner_scratch: Vec::new(),
            present_scratch: Vec::new(),
            page_scratch: Vec::new(),
            total_scratch: Vec::new(),
            label: self.label.clone(),
            config,
        }
    }

    /// Advances this worker's clock to the scheduler-provided start instant
    /// of its next access (never backwards; within one core the scheduler's
    /// clock is monotonic).
    pub fn sync_clock(&mut self, now: Nanos) {
        self.clock.advance_to(now);
    }

    /// Pre-sizes the per-access histograms for `accesses` samples so the
    /// fault hot path never reallocates in steady state.
    pub fn reserve_accesses(&mut self, accesses: usize) {
        self.result.access_latency.reserve(accesses);
        self.result.remote_access_latency.reserve(accesses);
    }

    /// Reshapes the engine for a scheduled multi-core replay: `cache_shards`
    /// cache shards routed by slot-region width `span`, one eviction-policy
    /// instance per shard, per-core prefetcher trend state, and
    /// scheduler-driven per-core clocks.
    ///
    /// A bounded prefetch-cache capacity is split evenly over the shards
    /// (never below one full prefetch window per shard, so a single batch
    /// cannot evict itself).
    pub fn enter_scheduled_mode(&mut self, cache_shards: usize, span: u64) {
        let per_shard = if self.config.prefetch_cache_pages == u64::MAX {
            u64::MAX
        } else {
            (self.config.prefetch_cache_pages / cache_shards as u64)
                .max(self.config.max_prefetch_window as u64)
        };
        self.cache = ShardedSwapCache::new(cache_shards, per_shard, span);
        self.evictors = (0..cache_shards)
            .map(|_| self.components.eviction.build(&self.config))
            .collect();
        self.tracker.set_per_core(true);
        self.scheduled = true;
    }

    /// The core the in-flight access is attributed to (always 0 outside
    /// scheduled mode).
    pub fn active_core(&self) -> usize {
        self.active_core
    }

    /// Moves the engine onto `core` at that core's local time. Called by the
    /// scheduler before every access of a scheduled replay; the clock may
    /// jump backwards across cores (each core has its own timeline).
    pub fn switch_core(&mut self, core: usize, now: Nanos) {
        self.active_core = core;
        self.clock = SimClock::starting_at(now);
    }

    /// Tags subsequent data-path traffic with the issuing tenant so
    /// tenant-targeted fault plans and per-tenant recovery ledgers know who
    /// is on-CPU. Called by the front-end at every access (the pid is known
    /// per access, not per core); a plain field store on the data path.
    pub fn set_active_tenant(&mut self, tenant: u32) {
        self.data_path.set_active_tenant(tenant);
    }

    /// Pins the clock to the replay's completion instant (the latest core's
    /// local time) so [`EngineCore::into_result`] reports the parallel
    /// makespan rather than the last-stepped core's time.
    pub fn finish_at(&mut self, completion: Nanos) {
        self.clock.advance_to(completion);
    }

    /// Stamps the result metadata from the traces about to be replayed.
    pub fn stamp_run(&mut self, workload: String) {
        self.result.workload = workload;
        self.result.config_label = self.label.clone();
    }

    /// Joined workload name for `traces` (matches the historical "+" join
    /// for multi-process runs). Built in one pass without intermediate
    /// per-trace `String`s.
    pub fn workload_name(traces: &[AccessTrace]) -> String {
        let mut name =
            String::with_capacity(traces.iter().map(|t| t.name().len() + 1).sum::<usize>());
        for (i, trace) in traces.iter().enumerate() {
            if i > 0 {
                name.push('+');
            }
            name.push_str(trace.name());
        }
        name
    }

    /// Picks the CPU core the next request is issued from. In scheduled mode
    /// this is the core the scheduler placed the access on; otherwise a
    /// round-robin cursor stands in for the kernel spreading threads over
    /// cores.
    pub fn next_core(&mut self) -> usize {
        if self.scheduled {
            return self.active_core;
        }
        self.core_cursor = (self.core_cursor + 1) % self.config.cores.max(1);
        self.core_cursor
    }

    /// Serves one page read over the data path from the next core.
    pub fn read_remote(&mut self, page_offset: u64) -> PathLatency {
        let core = self.next_core();
        self.read_remote_on(page_offset, core)
    }

    /// Serves one page read over the data path on an explicitly pinned
    /// core. Span admission draws one core per span and issues every read
    /// of the span from it, the way a faulting thread issues its whole
    /// prefetch window from the CPU it runs on.
    pub fn read_remote_on(&mut self, page_offset: u64, core: usize) -> PathLatency {
        let now = self.clock.now();
        stage_timing::time(Stage::DataPath, || {
            self.data_path.read_page(page_offset, core, now)
        })
    }

    /// Issues one page write-back over the data path from the next core.
    pub fn write_remote(&mut self, page_offset: u64) -> PathLatency {
        let core = self.next_core();
        let now = self.clock.now();
        stage_timing::time(Stage::DataPath, || {
            self.data_path.write_page(page_offset, core, now)
        })
    }

    /// Serves one prefetch read on an explicitly pinned core (same dispatch
    /// queues and random streams as [`EngineCore::read_remote_on`]), then
    /// submits it to the async pipeline so any in-flight-budget stall
    /// accumulates for the front-end to charge via
    /// [`EngineCore::take_pending_stall`].
    pub fn read_remote_async_on(&mut self, page_offset: u64, core: usize) -> PathLatency {
        let breakdown = self.read_remote_on(page_offset, core);
        self.submit_async(breakdown.total(), IoKind::PrefetchRead);
        breakdown
    }

    /// Serves a whole span of prefetch reads on one pinned core: one
    /// data-path span call (so batching data paths fold the per-read queue
    /// bookkeeping into one pass), then one async-pipeline submission per
    /// read in page order. Per-read totals, RNG draws, and pipeline stalls
    /// are bit-identical to looping [`EngineCore::read_remote_async_on`].
    pub fn read_remote_span(&mut self, pages: &[u64], core: usize) -> PathLatency {
        let mut totals = std::mem::take(&mut self.total_scratch);
        totals.clear();
        let now = self.clock.now();
        let aggregate = stage_timing::time(Stage::DataPath, || {
            self.data_path.read_span(pages, core, now, &mut totals)
        });
        for &total in &totals {
            self.submit_async(total, IoKind::PrefetchRead);
        }
        self.total_scratch = totals;
        aggregate
    }

    /// Issues one write-back like [`EngineCore::write_remote`], then submits
    /// it to the async pipeline (see [`EngineCore::read_remote_async`]).
    pub fn write_remote_async(&mut self, page_offset: u64) -> PathLatency {
        let breakdown = self.write_remote(page_offset);
        self.submit_async(breakdown.total(), IoKind::WriteBack);
        breakdown
    }

    /// Submits one already-issued transfer to the pipeline and banks the
    /// stall the in-flight budget imposed on the submitter.
    fn submit_async(&mut self, service: Nanos, kind: IoKind) {
        let outcome = self.pipeline.submit(self.clock.now(), service, kind);
        self.pending_stall = self.pending_stall.saturating_add(outcome.stall);
    }

    /// Hands the front-end the pipeline stall accumulated since the last
    /// call, resetting the accumulator. The caller folds it into whichever
    /// latency the blocked submitter is charged to (fault latency for
    /// prefetch reads, allocation wait for eviction write-backs).
    pub fn take_pending_stall(&mut self) -> Nanos {
        std::mem::replace(&mut self.pending_stall, Nanos::ZERO)
    }

    /// Registers (or replaces) `pid`'s memory budget in the engine's tenant
    /// ledger. Residency charging and eviction accounting for the tenant go
    /// through [`EngineCore::charge_tenant`] /
    /// [`EngineCore::record_swap_out`] afterwards.
    pub fn set_tenant_limit(&mut self, pid: Pid, limit: MemoryLimit) {
        self.tenant_limits.insert(pid, limit);
    }

    /// Charges one resident page to `pid`'s budget. Returns `false` when the
    /// charge did not fit (the tenant is at its limit and reclaim must make
    /// room); tenants without a registered limit are never blocked.
    pub fn charge_tenant(&mut self, pid: Pid) -> bool {
        match self.tenant_limits.get_mut(&pid) {
            Some(limit) => limit.try_charge(1),
            None => true,
        }
    }

    /// How many of `pid`'s resident pages must be reclaimed before `extra`
    /// more fit under its budget (0 when the tenant has headroom or no
    /// registered limit).
    pub fn tenant_pages_to_reclaim(&self, pid: Pid, extra: u64) -> u64 {
        match self.tenant_limits.get(&pid) {
            Some(limit) => limit.pages_to_reclaim_for(extra),
            None => 0,
        }
    }

    /// Books one page of `pid` swapped out: uncharges its budget and bumps
    /// both the global and the per-tenant eviction counters.
    pub fn record_swap_out(&mut self, pid: Pid) {
        if let Some(limit) = self.tenant_limits.get_mut(&pid) {
            limit.uncharge(1);
        }
        self.result.pages_swapped_out += 1;
        *self.result.tenant_evictions.entry(pid.0).or_insert(0) += 1;
    }

    /// Books an eviction pass into the run metrics: post-hit waits feed the
    /// Figure 4 distribution, freed pages feed the cache counters.
    pub fn record_eviction_report(&mut self, report: &EvictionReport) {
        for wait in &report.post_hit_wait {
            self.result.eviction_wait.record(*wait);
        }
        for _ in 0..report.freed_unused_prefetches {
            self.result.cache_stats.record_eviction(true);
        }
        self.result
            .prefetch_outcomes
            .record_wasted_evicted(report.freed_unused_prefetches);
        for _ in 0..report.freed_other {
            self.result.cache_stats.record_eviction(false);
        }
    }

    /// Looks up `slot` in its cache shard and, on a hit, does the whole
    /// hit side in one pass: the hit is recorded — and, under a policy
    /// that [frees on hit](CacheEvictor::frees_on_hit), the
    /// prefetch-origin entry is taken out — in a single cache map
    /// operation ([`leap_mem::SwapCache::record_hit_take`]), then cache/prefetch
    /// statistics, prefetcher feedback, and the owning shard's eviction
    /// policy react. Returns the hit entry, or `None` on a miss.
    pub fn cache_hit(&mut self, pid: Pid, slot: SwapSlot) -> Option<CacheEntry> {
        let now = self.clock.now();
        let shard = self.cache.shard_of(slot);
        let free_prefetched = self.evictors[shard].frees_on_hit();
        let (entry, taken) = stage_timing::time(Stage::Cache, || {
            self.cache
                .shard_mut(shard)
                .record_hit_take(slot, now, free_prefetched)
        })?;
        match entry.origin {
            CacheOrigin::Prefetch => {
                self.result.cache_stats.record_prefetch_hit();
                self.result
                    .prefetch_stats
                    .record_prefetch_hit(now.saturating_sub(entry.inserted_at));
                // Covered counts each prefetched page once, at its *first*
                // demand. `record_hit_take` only stamps `first_hit_at` when
                // it was unset, and per-shard clocks are strictly monotonic
                // across accesses (every hit charges a nonzero latency), so
                // `first_hit_at == now` identifies exactly the first hit —
                // repeat hits under a lazy policy carry an earlier stamp.
                if entry.first_hit_at == Some(now) {
                    self.result.prefetch_outcomes.record_covered(slot.0);
                }
                stage_timing::time(Stage::Prefetcher, || {
                    self.tracker
                        .on_prefetch_hit_at(pid, self.active_core, PageAddr(slot.0))
                });
            }
            CacheOrigin::Demand => {
                self.result.cache_stats.record_demand_hit();
            }
        }
        stage_timing::time(Stage::Eviction, || {
            if taken {
                self.evictors[shard].on_hit_freed(slot);
            } else {
                let _ =
                    self.evictors[shard].on_hit(slot, entry.origin, self.cache.shard_mut(shard));
            }
        });
        Some(entry)
    }

    /// Consults the prefetcher for `pid`'s fault at `addr` on the active
    /// core.
    pub fn prefetch_decision(
        &mut self,
        pid: Pid,
        addr: PageAddr,
    ) -> leap_prefetcher::PrefetchDecision {
        stage_timing::time(Stage::Prefetcher, || {
            self.tracker.on_fault_at(pid, self.active_core, addr)
        })
    }

    /// Caps the whole cache at `pages` on top of the per-shard capacities
    /// (the VFS front-end's file-cache budget; `u64::MAX` lifts the cap).
    pub fn set_cache_budget(&mut self, pages: u64) {
        self.cache_budget = (pages != u64::MAX).then_some(pages);
    }

    /// True when the configured whole-cache budget is exhausted.
    fn over_budget(&self) -> bool {
        match self.cache_budget {
            Some(budget) => self.cache.len() >= budget,
            None => false,
        }
    }

    /// True when `extra` more pages fit under the whole-cache budget (so a
    /// batched span insert cannot trip it mid-span).
    fn budget_fits(&self, extra: u64) -> bool {
        match self.cache_budget {
            Some(budget) => self.cache.len() + extra <= budget,
            None => true,
        }
    }

    /// Makes room in an already-routed cache shard (the span-batched
    /// admission path routes once per span, not once per page), honouring
    /// both the shard's capacity and the whole-cache budget.
    pub fn make_cache_space_at(&mut self, shard: usize) -> bool {
        if !self.cache.shard(shard).is_full() && !self.over_budget() {
            return true;
        }
        self.force_evict(shard)
    }

    /// Admits a whole prefetch span into the cache: for each slot, probe
    /// presence, make room, issue the read over the data path, and insert —
    /// with routing done once per span and the statistics/eviction
    /// bookkeeping batched whenever the span's shard has room for all of it
    /// (then no eviction can interleave, so batch and per-page sequencing
    /// are observably identical). `owners[i]` is the process whose page
    /// lives in `slots[i]`.
    ///
    /// Decision-for-decision equivalent to the historical per-candidate
    /// loop (probe, `make_cache_space`, `read_remote`,
    /// `insert_prefetched`), which the spans-vs-loops property tests pin.
    /// Returns how many prefetches were issued.
    pub fn admit_prefetch_span(&mut self, slots: &[SwapSlot], owners: &[Pid]) -> u32 {
        debug_assert_eq!(slots.len(), owners.len());
        if slots.is_empty() {
            return 0;
        }
        // One core per span: the faulting thread issues its whole prefetch
        // window from the CPU it runs on (and the batched dispatch below
        // needs a single queue target).
        let core = self.next_core();
        let span_shard = self.cache.span_shard(slots);
        if let Some(shard) = span_shard {
            if self.cache.shard(shard).free_pages() >= slots.len() as u64
                && self.budget_fits(slots.len() as u64)
            {
                return self.admit_span_batched(shard, core, slots, owners);
            }
        }
        // Careful path: the span straddles shards or its shard may have to
        // evict mid-span, so keep strict per-slot sequencing (the eviction
        // policy must see every insert before the next make-space call).
        let mut issued = 0u32;
        for (i, &slot) in slots.iter().enumerate() {
            let shard = span_shard.unwrap_or_else(|| self.cache.shard_of(slot));
            if stage_timing::time(Stage::Cache, || self.cache.shard(shard).contains(slot)) {
                continue;
            }
            if !self.make_cache_space_at(shard) {
                continue;
            }
            let _ = self.read_remote_async_on(slot.0, core);
            let now = self.clock.now();
            stage_timing::time(Stage::Cache, || {
                self.cache.shard_mut(shard).insert_fresh(
                    slot,
                    owners[i],
                    CacheOrigin::Prefetch,
                    now,
                )
            });
            self.result.cache_stats.record_add(1);
            self.result.prefetch_stats.record_prefetched(1);
            self.result.prefetch_outcomes.record_prefetched(slot.0);
            stage_timing::time(Stage::Eviction, || {
                self.evictors[shard].on_insert(slot, CacheOrigin::Prefetch)
            });
            issued += 1;
        }
        issued
    }

    /// The no-eviction-possible fast path of [`EngineCore::admit_prefetch_span`]:
    /// one presence probe for the whole span, one data-path span read for
    /// every admitted page, then one batched insert pass, one evictor
    /// notification, and one statistics update.
    fn admit_span_batched(
        &mut self,
        shard: usize,
        core: usize,
        slots: &[SwapSlot],
        owners: &[Pid],
    ) -> u32 {
        let mut admitted = std::mem::take(&mut self.span_scratch);
        let mut admitted_owners = std::mem::take(&mut self.owner_scratch);
        let mut present = std::mem::take(&mut self.present_scratch);
        let mut pages = std::mem::take(&mut self.page_scratch);
        admitted.clear();
        admitted_owners.clear();
        present.clear();
        present.resize(slots.len(), false);
        pages.clear();
        // One routed presence probe for the whole span; sound because the
        // cache is not mutated until the insert pass below.
        stage_timing::time(Stage::Cache, || {
            self.cache.contains_span(slots, &mut present);
        });
        for (i, &slot) in slots.iter().enumerate() {
            // The in-span duplicate guard stands in for the presence check
            // a per-page loop would have re-done after each insert
            // (prefetchers outside this crate may emit duplicate
            // candidates); spans are at most one prefetch window, so the
            // linear scan is cheaper than hashing.
            if present[i] || admitted.contains(&slot) {
                continue;
            }
            admitted.push(slot);
            admitted_owners.push(owners[i]);
            pages.push(slot.0);
        }
        // All the span's reads go out in one data-path call: same draws,
        // same per-read totals and pipeline submissions as the per-page
        // loop, with the queue bookkeeping done once.
        if !pages.is_empty() {
            let _ = self.read_remote_span(&pages, core);
        }
        self.page_scratch = pages;
        let now = self.clock.now();
        stage_timing::time(Stage::Cache, || {
            self.cache.insert_fresh_span(
                shard,
                &admitted,
                &admitted_owners,
                CacheOrigin::Prefetch,
                now,
            );
        });
        stage_timing::time(Stage::Eviction, || {
            self.evictors[shard].on_insert_span(&admitted, CacheOrigin::Prefetch)
        });
        let issued = admitted.len() as u32;
        self.result.cache_stats.record_add(issued as u64);
        self.result.prefetch_stats.record_prefetched(issued as u64);
        // One outcome event per admitted page, in span order — the same
        // fold sequence the careful path (and the per-candidate reference)
        // produces for these pages.
        for &slot in &admitted {
            self.result.prefetch_outcomes.record_prefetched(slot.0);
        }
        self.span_scratch = admitted;
        self.owner_scratch = admitted_owners;
        self.present_scratch = present;
        issued
    }

    /// Runs one eviction pass of `shard`'s policy and books its effects.
    /// Returns `true` if anything was freed.
    pub fn force_evict(&mut self, shard: usize) -> bool {
        let now = self.clock.now();
        let report = stage_timing::time(Stage::Eviction, || {
            self.evictors[shard].make_space(self.cache.shard_mut(shard), 1, now)
        });
        let freed = !report.is_empty();
        self.record_eviction_report(&report);
        freed
    }

    /// Inserts a prefetched page into its cache shard (the transfer itself
    /// has already been issued over the data path) and updates every
    /// counter. Returns `true` if the insert took place. Kept test-only:
    /// both front-ends admit prefetches through
    /// [`EngineCore::admit_prefetch_span`] now; the per-candidate reference
    /// paths the equivalence tests replay still sequence through this.
    #[cfg(test)]
    pub fn insert_prefetched(&mut self, slot: SwapSlot, owner: Pid) -> bool {
        let now = self.clock.now();
        if stage_timing::time(Stage::Cache, || {
            self.cache.insert(slot, owner, CacheOrigin::Prefetch, now)
        }) {
            self.result.cache_stats.record_add(1);
            self.result.prefetch_stats.record_prefetched(1);
            self.result.prefetch_outcomes.record_prefetched(slot.0);
            let shard = self.cache.shard_of(slot);
            stage_timing::time(Stage::Eviction, || {
                self.evictors[shard].on_insert(slot, CacheOrigin::Prefetch)
            });
            true
        } else {
            false
        }
    }

    /// Inserts a demand-fetched page into its cache shard, notifying the
    /// shard's eviction policy. Returns `true` if the insert took place.
    pub fn insert_demand(&mut self, slot: SwapSlot, owner: Pid) -> bool {
        let now = self.clock.now();
        if stage_timing::time(Stage::Cache, || {
            self.cache.insert(slot, owner, CacheOrigin::Demand, now)
        }) {
            let shard = self.cache.shard_of(slot);
            stage_timing::time(Stage::Eviction, || {
                self.evictors[shard].on_insert(slot, CacheOrigin::Demand)
            });
            true
        } else {
            false
        }
    }

    /// Pages the active shard's reclaimer currently tracks (what a direct
    /// reclaim on the faulting core would have to scan).
    pub fn reclaim_scan_pages(&self) -> u64 {
        let shard = self.active_core.min(self.evictors.len() - 1);
        self.evictors[shard].tracked_pages()
    }

    /// Runs the active core's shard's background reclaimer (a no-op for
    /// policies without one) and books its effects.
    ///
    /// Only the active shard is scanned: each shard's entry timestamps live
    /// on its own core's timeline, so reclaiming another core's shard at
    /// this core's local time would pollute the wait statistics with
    /// cross-timeline deltas. (Legacy single-shard runs are unaffected —
    /// there is exactly one shard and one clock.)
    pub fn background_reclaim(&mut self) {
        let shard = self.active_core.min(self.evictors.len() - 1);
        // The eager policy has no background scanner; skip the virtual call
        // (and its timing probe) on every access rather than dispatching
        // into a guaranteed no-op.
        if !self.evictors[shard].has_background_reclaimer() {
            return;
        }
        let now = self.clock.now();
        let report = stage_timing::time(Stage::Eviction, || {
            self.evictors[shard].background_reclaim(self.cache.shard_mut(shard), now)
        });
        if let Some(report) = report {
            self.record_eviction_report(&report);
        }
    }

    /// Charges one access: advances the clock over the access's compute and
    /// `latency`, records the histograms, and emits the [`FaultEvent`].
    ///
    /// Must be called exactly once per access, after the outcome-specific
    /// work (the compute advance happens in [`EngineCore::begin_access`]).
    pub fn complete_access(
        &mut self,
        pid: Pid,
        access: Access,
        outcome: AccessOutcome,
        latency: Nanos,
        prefetches_issued: u32,
    ) -> FaultEvent {
        self.clock.advance(latency);
        self.pipeline.retire(self.clock.now());
        self.result.access_latency.record(latency);
        if outcome.is_remote() {
            self.result.remote_access_latency.record(latency);
        }
        let event = FaultEvent {
            seq: self.seq,
            pid,
            core: self.active_core,
            page: access.page,
            is_write: access.is_write,
            compute: access.compute,
            outcome,
            latency,
            completed_at: self.clock.now(),
            prefetches_issued,
        };
        self.seq += 1;
        event
    }

    /// Starts one access: advances the clock over its compute cost and
    /// counts it.
    pub fn begin_access(&mut self, access: &Access) {
        self.clock.advance(access.compute);
        self.result.total_accesses += 1;
    }

    /// Resets the async pipeline, forgetting traffic submitted so far (the
    /// prepopulation phase issues write-backs that do not belong to the
    /// measured run) so the pipeline counters start clean.
    pub fn reset_pipeline(&mut self) {
        self.pipeline = AsyncPipeline::new(self.config.async_depth);
        self.pending_stall = Nanos::ZERO;
    }

    /// Folds the pipeline's final state into the result: drains outstanding
    /// completions (the run waits for its in-flight I/O) and snapshots the
    /// counters. Shard workers call this before their partial results are
    /// merged.
    pub fn seal_pipeline(&mut self) {
        self.pipeline.drain();
        // Prefetched pages still sitting unused in this engine's cache never
        // got demanded: classify them wasted-unconsumed so every prefetch
        // has exactly one outcome. Workers seal before their partials merge,
        // so each shard classifies only the pages it admitted.
        self.result
            .prefetch_outcomes
            .record_wasted_unconsumed(self.cache.unused_prefetched());
        self.result.pipeline = *self.pipeline.stats();
        self.result.fault_stats = self.data_path.fault_stats();
        self.result.recovery_stats = self.data_path.recovery_stats();
        for (tenant, ledger) in self.data_path.tenant_recovery() {
            self.result
                .tenant_recovery
                .entry(tenant)
                .or_default()
                .merge(&ledger);
        }
    }

    /// Finishes the run.
    pub fn into_result(mut self) -> RunResult {
        self.seal_pipeline();
        self.result.completion_time = self.clock.now();
        self.result
    }
}
