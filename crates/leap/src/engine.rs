//! The shared fault-engine core.
//!
//! Everything the two front-ends ([`crate::VmmSimulator`],
//! [`crate::VfsSimulator`]) have in common lives here: the simulation clock,
//! the swap/prefetch cache, the per-process prefetcher tracker, the data
//! path, the eviction policy, result accumulation, and the round-robin core
//! cursor. The front-ends keep only what genuinely differs — page tables,
//! swap space and cgroup limits for the VMM; the cache budget for the VFS —
//! and drive the core through the helpers below, so hit/miss accounting and
//! eviction bookkeeping are implemented exactly once.

use crate::builder::SimSetup;
use crate::config::SimConfig;
use crate::result::RunResult;
use crate::session::{AccessOutcome, FaultEvent};
use crate::tracker::PageAccessTracker;
use leap_datapath::{DataPath, PathLatency};
use leap_eviction::{CacheEvictor, EvictionReport};
use leap_mem::{CacheEntry, CacheOrigin, Pid, SwapCache, SwapSlot};
use leap_prefetcher::PageAddr;
use leap_sim_core::{DetRng, Nanos, SimClock};
use leap_workloads::{Access, AccessTrace};

/// Shared state and bookkeeping of one simulation run.
#[derive(Debug)]
pub(crate) struct EngineCore {
    pub config: SimConfig,
    pub label: String,
    pub clock: SimClock,
    pub cache: SwapCache,
    pub tracker: PageAccessTracker,
    pub data_path: Box<dyn DataPath>,
    pub evictor: Box<dyn CacheEvictor>,
    pub result: RunResult,
    pub seq: u64,
    core_cursor: usize,
}

impl EngineCore {
    /// Builds the core from a resolved setup. `rng_salt` decorrelates the
    /// front-ends' random streams for the same seed (the VFS front-end
    /// historically salts with `0xF5`).
    pub fn new(setup: &SimSetup, rng_salt: u64) -> Self {
        let config = setup.config;
        let mut rng = DetRng::seed_from(config.seed ^ rng_salt);
        let components = setup.components();
        EngineCore {
            clock: SimClock::new(),
            cache: SwapCache::new(config.prefetch_cache_pages),
            tracker: PageAccessTracker::new(components.prefetcher.clone(), &config),
            data_path: components.data_path.build(&config, &mut rng),
            evictor: components.eviction.build(&config),
            result: RunResult::default(),
            seq: 0,
            core_cursor: 0,
            label: setup.label(),
            config,
        }
    }

    /// Stamps the result metadata from the traces about to be replayed.
    pub fn stamp_run(&mut self, workload: String) {
        self.result.workload = workload;
        self.result.config_label = self.label.clone();
    }

    /// Joined workload name for `traces` (matches the historical "+" join
    /// for multi-process runs).
    pub fn workload_name(traces: &[AccessTrace]) -> String {
        traces
            .iter()
            .map(|t| t.name().to_string())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Picks the CPU core the next request is issued from (round-robin, as a
    /// stand-in for the scheduler spreading threads over cores).
    pub fn next_core(&mut self) -> usize {
        self.core_cursor = (self.core_cursor + 1) % self.config.cores.max(1);
        self.core_cursor
    }

    /// Serves one page read over the data path from the next core.
    pub fn read_remote(&mut self, page_offset: u64) -> PathLatency {
        let core = self.next_core();
        let now = self.clock.now();
        self.data_path.read_page(page_offset, core, now)
    }

    /// Issues one page write-back over the data path from the next core.
    pub fn write_remote(&mut self, page_offset: u64) -> PathLatency {
        let core = self.next_core();
        let now = self.clock.now();
        self.data_path.write_page(page_offset, core, now)
    }

    /// Books an eviction pass into the run metrics: post-hit waits feed the
    /// Figure 4 distribution, freed pages feed the cache counters.
    pub fn record_eviction_report(&mut self, report: &EvictionReport) {
        for wait in &report.post_hit_wait {
            self.result.eviction_wait.record(*wait);
        }
        for _ in 0..report.freed_unused_prefetches {
            self.result.cache_stats.record_eviction(true);
        }
        for _ in 0..report.freed_other {
            self.result.cache_stats.record_eviction(false);
        }
    }

    /// Handles the accounting for a swap-cache hit by `pid`: cache/prefetch
    /// statistics, prefetcher feedback, and the eviction policy's reaction.
    /// Returns `true` if the policy freed the entry.
    pub fn note_cache_hit(&mut self, pid: Pid, slot: SwapSlot, entry: &CacheEntry) -> bool {
        let now = self.clock.now();
        match entry.origin {
            CacheOrigin::Prefetch => {
                self.result.cache_stats.record_prefetch_hit();
                self.result
                    .prefetch_stats
                    .record_prefetch_hit(now.saturating_sub(entry.inserted_at));
                self.tracker.on_prefetch_hit(pid, PageAddr(slot.0));
            }
            CacheOrigin::Demand => {
                self.result.cache_stats.record_demand_hit();
            }
        }
        self.evictor.on_hit(slot, entry.origin, &mut self.cache)
    }

    /// Makes room for one page in a bounded prefetch cache. Returns `false`
    /// when the policy could not free anything (the caller should skip its
    /// insert).
    pub fn make_cache_space(&mut self) -> bool {
        if !self.cache.is_full() {
            return true;
        }
        let now = self.clock.now();
        let report = self.evictor.make_space(&mut self.cache, 1, now);
        let freed = !report.is_empty();
        self.record_eviction_report(&report);
        freed
    }

    /// Inserts a prefetched page into the cache (the transfer itself has
    /// already been issued over the data path) and updates every counter.
    /// Returns `true` if the insert took place.
    pub fn insert_prefetched(&mut self, slot: SwapSlot, owner: Pid) -> bool {
        let now = self.clock.now();
        if self.cache.insert(slot, owner, CacheOrigin::Prefetch, now) {
            self.result.cache_stats.record_add(1);
            self.result.prefetch_stats.record_prefetched(1);
            self.evictor.on_insert(slot, CacheOrigin::Prefetch);
            true
        } else {
            false
        }
    }

    /// Runs the eviction policy's background reclaimer (a no-op for
    /// policies without one) and books its effects.
    pub fn background_reclaim(&mut self) {
        let now = self.clock.now();
        if let Some(report) = self.evictor.background_reclaim(&mut self.cache, now) {
            self.record_eviction_report(&report);
        }
    }

    /// Charges one access: advances the clock over the access's compute and
    /// `latency`, records the histograms, and emits the [`FaultEvent`].
    ///
    /// Must be called exactly once per access, after the outcome-specific
    /// work (the compute advance happens in [`EngineCore::begin_access`]).
    pub fn complete_access(
        &mut self,
        pid: Pid,
        access: Access,
        outcome: AccessOutcome,
        latency: Nanos,
        prefetches_issued: u32,
    ) -> FaultEvent {
        self.clock.advance(latency);
        self.result.access_latency.record(latency);
        if outcome.is_remote() {
            self.result.remote_access_latency.record(latency);
        }
        let event = FaultEvent {
            seq: self.seq,
            pid,
            page: access.page,
            is_write: access.is_write,
            outcome,
            latency,
            completed_at: self.clock.now(),
            prefetches_issued,
        };
        self.seq += 1;
        event
    }

    /// Starts one access: advances the clock over its compute cost and
    /// counts it.
    pub fn begin_access(&mut self, access: &Access) {
        self.clock.advance(access.compute);
        self.result.total_accesses += 1;
    }

    /// Finishes the run.
    pub fn into_result(mut self) -> RunResult {
        self.result.completion_time = self.clock.now();
        self.result
    }
}
