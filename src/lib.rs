//! Umbrella crate for the Leap reproduction workspace.
//!
//! `leap-repro` re-exports the workspace crates so the examples and the
//! cross-crate integration tests can depend on a single package. The actual
//! functionality lives in:
//!
//! - [`leap`] — the core library (fault engine, VMM/VFS front-ends).
//! - [`leap_prefetcher`] — the majority-trend prefetcher and baselines.
//! - [`leap_mem`], [`leap_remote`], [`leap_datapath`], [`leap_eviction`] —
//!   the substrates.
//! - [`leap_service`] — the multi-tenant far-memory paging service
//!   (admission, budgets, per-tenant QoS).
//! - [`leap_workloads`] — trace generators.
//! - [`leap_metrics`] — histograms, counters, and text tables.
//! - [`leap_sim_core`] — clock, RNG, latency samplers.
//!
//! The README below is included verbatim so its examples compile and run
//! under `cargo test --doc` and cannot rot.
#![doc = include_str!("../README.md")]

pub use leap;
pub use leap_datapath;
pub use leap_eviction;
pub use leap_mem;
pub use leap_metrics;
pub use leap_prefetcher;
pub use leap_remote;
pub use leap_service;
pub use leap_sim_core;
pub use leap_workloads;

/// Convenience prelude mirroring [`leap::prelude`].
pub mod prelude {
    pub use leap::prelude::*;
}
