//! Key-value cache tiering scenario: a Memcached-style service and a
//! VoltDB-style OLTP store paging to remote memory.
//!
//! Latency-sensitive services are the hardest case for remote memory: their
//! access patterns are mostly irregular, so the win has to come from the lean
//! data path and from *not* polluting the cache (§5.3.3–5.3.4). This example
//! reports throughput at different memory limits and shows the effect of
//! constraining the prefetch cache (the Figure 12 view).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example kv_cache_tiering
//! ```

use leap_repro::leap_metrics::TextTable;
use leap_repro::prelude::*;

fn throughput(kind: AppKind, config: SimConfig, accesses: usize) -> f64 {
    let trace = AppModel::new(kind, 99).with_accesses(accesses).generate();
    let result = VmmSimulator::new(config).run_prepopulated(&trace);
    result.throughput_ops_per_sec()
}

fn main() {
    let accesses = 80_000;

    // Throughput vs memory limit (Figure 11c/11d flavour).
    for kind in [AppKind::VoltDb, AppKind::Memcached] {
        let mut table = TextTable::new(vec![
            "memory limit",
            "D-VMM (ops/s)",
            "D-VMM+Leap (ops/s)",
            "improvement",
        ])
        .with_title(format!("{kind} throughput under remote paging"));
        for fraction in [1.0, 0.5, 0.25] {
            let dvmm = throughput(
                kind,
                SimConfig::linux_defaults()
                    .to_builder()
                    .memory_fraction(fraction)
                    .build()
                    .expect("valid config"),
                accesses,
            );
            let leap = throughput(
                kind,
                SimConfig::builder()
                    .memory_fraction(fraction)
                    .build()
                    .expect("valid config"),
                accesses,
            );
            table.add_row(vec![
                format!("{:.0}%", fraction * 100.0),
                format!("{:.0}", dvmm),
                format!("{:.0}", leap),
                format!("{:.2}x", leap / dvmm.max(1.0)),
            ]);
        }
        println!("{table}");
    }

    // Constrained prefetch-cache sweep at 50 % memory (Figure 12 flavour).
    let mut cache_table = TextTable::new(vec![
        "prefetch cache",
        "VoltDB (ops/s)",
        "Memcached (ops/s)",
    ])
    .with_title("Leap throughput with a constrained prefetch cache (50% memory)");
    for (label, pages) in [
        ("unlimited", u64::MAX),
        ("320 MB", 320 * 256),
        ("32 MB", 32 * 256),
        ("3.2 MB", 819),
    ] {
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .prefetch_cache_pages(pages)
            .build()
            .expect("valid config");
        cache_table.add_row(vec![
            label.to_string(),
            format!("{:.0}", throughput(AppKind::VoltDb, config, accesses)),
            format!("{:.0}", throughput(AppKind::Memcached, config, accesses)),
        ]);
    }
    println!("{cache_table}");
}
