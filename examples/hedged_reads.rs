//! Hedged reads under the canonical storm: what the recovery layer buys
//! back at the tail.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example hedged_reads
//! ```
//!
//! The demo replays the same read stream through the lean data path twice
//! over [`FaultSpec::canonical_storm`] — once bare, once with
//! [`RecoveryPolicy::tail_tolerant`] (deadlines + retries + hedged reads) —
//! and prints the p50/p99 latencies side by side with the recovery
//! counters. Both runs are fully deterministic: the fault schedule comes
//! from the fault-salted RNG stream, recovery decisions from the
//! recovery-salted stream, so the two runs see byte-identical fault plans
//! and workload draws and the table reproduces bit-for-bit.

use leap_repro::leap_datapath::{DataPath, LeanDataPath};
use leap_repro::leap_metrics::{LatencyHistogram, TextTable};
use leap_repro::leap_remote::{
    recovery_stream_seed, FaultPlan, FaultSpec, RecoveryPolicy, RecoveryStats,
};
use leap_repro::leap_sim_core::{DetRng, Nanos};

const SEED: u64 = 2020;
const READS: u64 = 4_000;
const CORES: u64 = 4;

/// Replays `READS` page reads spread uniformly over the storm window.
fn run(spec: &FaultSpec, policy: RecoveryPolicy) -> (LatencyHistogram, RecoveryStats) {
    let mut path = LeanDataPath::with_default_cluster(DetRng::seed_from(SEED));
    if spec.is_active() {
        let machines = path.agent().cluster().len() as u32;
        path.agent_mut()
            .install_fault_plan(FaultPlan::from_spec(SEED, spec, machines));
    }
    if policy.is_active() {
        path.agent_mut()
            .install_recovery(policy, recovery_stream_seed(SEED));
    }
    let span = spec.horizon.saturating_sub(spec.start).as_nanos().max(1);
    let mut latencies = LatencyHistogram::default();
    for i in 0..READS {
        let now = spec.start + Nanos::from_nanos(i * span / READS);
        let breakdown = path.read_page(i.wrapping_mul(11), (i % CORES) as usize, now);
        latencies.record(breakdown.total());
    }
    (latencies, path.recovery_stats())
}

fn main() {
    let storm = FaultSpec::canonical_storm();
    println!(
        "canonical storm: {} latency-spike epoch(s), {} degraded epoch(s), \
         {} reconnect storm(s), {} machine failure(s) over [{:.0} us, {:.0} us)\n",
        storm.latency_spikes,
        storm.degraded_epochs,
        storm.reconnect_storms,
        storm.machine_failures,
        storm.start.as_micros_f64(),
        storm.horizon.as_micros_f64(),
    );

    let mut table = TextTable::new(vec![
        "recovery",
        "p50 (us)",
        "p99 (us)",
        "hedges issued",
        "hedges won",
        "hedges wasted",
        "retries",
        "deadline timeouts",
    ])
    .with_title(format!(
        "Hedged reads under the canonical storm ({READS} reads, seed {SEED})"
    ));
    let mut p99 = Vec::new();
    for (label, policy) in [
        ("off", RecoveryPolicy::none()),
        ("tail-tolerant", RecoveryPolicy::tail_tolerant()),
    ] {
        let (mut latencies, stats) = run(&storm, policy);
        p99.push(latencies.percentile(99.0));
        table.add_row(vec![
            label.to_string(),
            format!("{:.2}", latencies.median().as_micros_f64()),
            format!("{:.2}", latencies.percentile(99.0).as_micros_f64()),
            format!("{}", stats.hedges_issued),
            format!("{}", stats.hedges_won),
            format!("{}", stats.hedges_wasted),
            format!("{}", stats.retries),
            format!("{}", stats.deadline_timeouts),
        ]);
    }
    println!("{}", table.render());

    let (bare, hedged) = (p99[0], p99[1]);
    println!(
        "\nhedging flattened the storm p99 from {:.2} us to {:.2} us ({:.1}x)",
        bare.as_micros_f64(),
        hedged.as_micros_f64(),
        bare.as_nanos() as f64 / hedged.as_nanos().max(1) as f64,
    );
}
