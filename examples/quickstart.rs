//! Quickstart: compare the default Linux remote-paging path with Leap on the
//! paper's Stride-10 microbenchmark.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use leap_repro::leap_metrics::TextTable;
use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_workloads::{sequential_trace, stride_trace};
use leap_repro::prelude::*;

fn row(label: &str, result: &mut RunResult) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.2}", result.median_remote_latency().as_micros_f64()),
        format!("{:.2}", result.p99_remote_latency().as_micros_f64()),
        format!("{:.1}%", 100.0 * result.cache_hit_ratio()),
        format!("{:.3}", result.completion_seconds()),
    ]
}

fn main() {
    // A 16 MiB working set with 50 % local memory, as in the paper's
    // microbenchmark setup (scaled down so the example finishes in seconds).
    let working_set = 16 * MIB;
    let memory_fraction = 0.5;

    let workloads = vec![
        ("sequential", sequential_trace(working_set, 1)),
        ("stride-10", stride_trace(working_set, 10, 1)),
    ];

    for (name, trace) in workloads {
        let mut table = TextTable::new(vec![
            "configuration",
            "median (us)",
            "p99 (us)",
            "cache hit",
            "completion (s)",
        ])
        .with_title(format!("4KB remote page access latency — {name}"));

        let linux_config = SimConfig::linux_defaults()
            .to_builder()
            .memory_fraction(memory_fraction)
            .build()
            .expect("valid config");
        let leap_config = SimConfig::builder()
            .memory_fraction(memory_fraction)
            .build()
            .expect("valid config");

        let mut linux = VmmSimulator::new(linux_config).run_prepopulated(&trace);
        let mut leap = VmmSimulator::new(leap_config).run_prepopulated(&trace);

        table.add_row(row("D-VMM (Linux default)", &mut linux));
        table.add_row(row("D-VMM + Leap", &mut leap));
        println!("{table}");

        let speedup = linux.median_remote_latency().as_micros_f64()
            / leap.median_remote_latency().as_micros_f64().max(0.001);
        println!("median speedup with Leap: {speedup:.1}x\n");
    }

    // The prefetcher alone, demonstrated on the Figure 5 example from §3.2.1.
    use leap_repro::leap_prefetcher::{LeapPrefetcher, PageAddr, Prefetcher};
    let mut prefetcher = LeapPrefetcher::default();
    let figure5 = [
        0x48u64, 0x45, 0x42, 0x3F, 0x3C, 0x02, 0x04, 0x06, 0x08, 0x0A, 0x0C, 0x10, 0x39, 0x12,
        0x14, 0x16,
    ];
    println!("Leap trend detection on the paper's Figure 5 access sequence:");
    for addr in figure5 {
        let decision = prefetcher.on_fault(PageAddr(addr));
        println!(
            "  fault {:#04x} -> trend {:?}, prefetch {:?}",
            addr,
            prefetcher.last_known_trend(),
            decision.iter().map(|p| format!("{p}")).collect::<Vec<_>>()
        );
    }
}
