//! Multi-tenant scenario: all four applications paging to remote memory at
//! the same time (the paper's Figure 13 experiment), replayed by the
//! time-sliced multi-core scheduler.
//!
//! Two effects are on display:
//!
//! - **Per-process isolation** of the page access tracker: with one shared
//!   prefetcher (as in the stock kernel) the interleaved fault streams of
//!   four applications look random and prefetching collapses; with Leap's
//!   per-process (and, on the scheduled path, per-core) tracking each
//!   application keeps its own trend.
//! - **Per-core sharding + scheduling**: each process is pinned to a run
//!   queue, runs for a configurable quantum, and pages through its core's
//!   own swap/cache shard. The per-core `FaultEvent` streams (observed via
//!   `CoreActivity`) show how the work spread and give the makespan the
//!   throughput numbers are computed from.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use leap_repro::leap_metrics::TextTable;
use leap_repro::leap_sim_core::Nanos;
use leap_repro::prelude::*;

fn main() {
    let accesses = 50_000;
    let cores = 4;
    let quantum = Nanos::from_micros(500);
    let traces: Vec<_> = AppKind::ALL
        .iter()
        .map(|&kind| AppModel::new(kind, 7).with_accesses(accesses).generate())
        .collect();
    println!(
        "replaying {} accesses from {} applications over {cores} cores ({} us quantum)\n",
        accesses * traces.len(),
        traces.len(),
        quantum.as_micros_f64(),
    );

    let mut table = TextTable::new(vec![
        "configuration",
        "median remote access (us)",
        "p99 (us)",
        "prefetch coverage",
        "makespan (s)",
        "throughput (kops/s)",
    ])
    .with_title("All four applications running concurrently (50% memory each)");

    let configs = [
        (
            "D-VMM (shared readahead)",
            SimConfig::linux_defaults()
                .to_builder()
                .memory_fraction(0.5)
                .cores(cores)
                .sched_quantum(quantum)
                .build()
                .expect("valid config"),
        ),
        (
            "D-VMM+Leap, shared tracker",
            SimConfig::builder()
                .memory_fraction(0.5)
                .cores(cores)
                .sched_quantum(quantum)
                .per_process_isolation(false)
                .build()
                .expect("valid config"),
        ),
        (
            "D-VMM+Leap, per-process isolation",
            SimConfig::builder()
                .memory_fraction(0.5)
                .cores(cores)
                .sched_quantum(quantum)
                .build()
                .expect("valid config"),
        ),
    ];

    let mut leap_activity = None;
    for (label, config) in configs {
        let is_leap_isolated = label.contains("isolation");
        let mut activity = CoreActivity::default();
        let mut result = VmmSimulator::new(config)
            .session()
            .observe(&mut activity)
            .run_multi(&traces);
        table.add_row(vec![
            label.to_string(),
            format!("{:.2}", result.median_remote_latency().as_micros_f64()),
            format!("{:.2}", result.p99_remote_latency().as_micros_f64()),
            format!("{:.1}%", 100.0 * result.prefetch_stats.coverage()),
            format!("{:.3}", activity.completion_time().as_secs_f64()),
            format!("{:.1}", activity.throughput_ops_per_sec() / 1_000.0),
        ]);
        if is_leap_isolated {
            leap_activity = Some(activity);
        }
    }
    println!("{table}");

    // Per-core breakdown of the full-Leap run, straight from the stream.
    if let Some(activity) = leap_activity {
        let mut per_core = TextTable::new(vec![
            "core",
            "accesses",
            "remote accesses",
            "prefetches issued",
            "local completion (s)",
        ])
        .with_title("Per-core event streams (D-VMM+Leap, per-process isolation)");
        for (core, stats) in activity.per_core().iter().enumerate() {
            per_core.add_row(vec![
                format!("{core}"),
                format!("{}", stats.accesses),
                format!("{}", stats.remote_accesses),
                format!("{}", stats.prefetches_issued),
                format!("{:.3}", stats.last_completed_at.as_secs_f64()),
            ]);
        }
        println!("{per_core}");
    }
}
