//! Multi-tenant scenario: all four applications paging to remote memory at
//! the same time (the paper's Figure 13 experiment).
//!
//! The interesting effect is per-process isolation of the page access
//! tracker: with one shared prefetcher (as in the stock kernel), the
//! interleaved fault streams of four applications look random and prefetching
//! collapses; with Leap's per-process tracking each application keeps its own
//! trend.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use leap_repro::leap_metrics::TextTable;
use leap_repro::leap_workloads::interleave;
use leap_repro::prelude::*;

fn main() {
    let accesses = 50_000;
    let traces: Vec<_> = AppKind::ALL
        .iter()
        .map(|&kind| AppModel::new(kind, 7).with_accesses(accesses).generate())
        .collect();
    let schedule = interleave(&traces, 2024);
    println!(
        "replaying {} interleaved accesses from {} applications\n",
        schedule.len(),
        traces.len()
    );

    let mut table = TextTable::new(vec![
        "configuration",
        "median remote access (us)",
        "p99 (us)",
        "prefetch coverage",
        "completion (s)",
    ])
    .with_title("All four applications running concurrently (50% memory each)");

    let configs = [
        (
            "D-VMM (shared readahead)",
            SimConfig::linux_defaults()
                .to_builder()
                .memory_fraction(0.5)
                .build()
                .expect("valid config"),
        ),
        (
            "D-VMM+Leap, shared tracker",
            SimConfig::builder()
                .memory_fraction(0.5)
                .per_process_isolation(false)
                .build()
                .expect("valid config"),
        ),
        (
            "D-VMM+Leap, per-process isolation",
            SimConfig::builder()
                .memory_fraction(0.5)
                .build()
                .expect("valid config"),
        ),
    ];

    for (label, config) in configs {
        let mut result = VmmSimulator::new(config).run_multi(&traces, &schedule);
        table.add_row(vec![
            label.to_string(),
            format!("{:.2}", result.median_remote_latency().as_micros_f64()),
            format!("{:.2}", result.p99_remote_latency().as_micros_f64()),
            format!("{:.1}%", 100.0 * result.prefetch_stats.coverage()),
            format!("{:.3}", result.completion_seconds()),
        ]);
    }
    println!("{table}");
}
