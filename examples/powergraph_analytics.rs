//! Graph-analytics scenario: a PowerGraph-style application whose working
//! set does not fit in local memory.
//!
//! This reproduces the flavour of the paper's §5.3.1 experiment: the same
//! graph-processing access trace is replayed against paging to a local disk,
//! the default disaggregated-VMM path, and the Leap path, at 100 %, 50 %, and
//! 25 % local memory. It also compares the four prefetching algorithms in
//! isolation (the Figure 9/10 view).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example powergraph_analytics
//! ```

use leap_repro::leap_metrics::TextTable;
use leap_repro::prelude::*;

fn main() {
    let trace = AppModel::new(AppKind::PowerGraph, 42)
        .with_accesses(120_000)
        .generate();
    println!(
        "PowerGraph-style trace: {} accesses over {} pages (~{} MiB working set)\n",
        trace.len(),
        trace.working_set_pages(),
        trace.working_set_pages() * 4 / 1024
    );

    // Completion time across memory limits and configurations (Figure 11a).
    let mut table = TextTable::new(vec![
        "memory limit",
        "Disk (s)",
        "D-VMM (s)",
        "D-VMM+Leap (s)",
        "Leap speedup vs D-VMM",
    ])
    .with_title("PowerGraph completion time");
    for fraction in [1.0, 0.5, 0.25] {
        let disk_config = SimConfig::disk_defaults(BackendKind::Ssd)
            .to_builder()
            .memory_fraction(fraction)
            .build()
            .expect("valid config");
        let disk = VmmSimulator::new(disk_config).run_prepopulated(&trace);
        let linux_config = SimConfig::linux_defaults()
            .to_builder()
            .memory_fraction(fraction)
            .build()
            .expect("valid config");
        let dvmm = VmmSimulator::new(linux_config).run_prepopulated(&trace);
        let leap_config = SimConfig::builder()
            .memory_fraction(fraction)
            .build()
            .expect("valid config");
        let leap = VmmSimulator::new(leap_config).run_prepopulated(&trace);
        table.add_row(vec![
            format!("{:.0}%", fraction * 100.0),
            format!("{:.3}", disk.completion_seconds()),
            format!("{:.3}", dvmm.completion_seconds()),
            format!("{:.3}", leap.completion_seconds()),
            format!(
                "{:.2}x",
                dvmm.completion_seconds() / leap.completion_seconds().max(1e-9)
            ),
        ]);
    }
    println!("{table}");

    // Prefetcher comparison at 50 % memory (Figures 9 and 10).
    let mut prefetch_table = TextTable::new(vec![
        "prefetcher",
        "cache adds",
        "cache misses",
        "accuracy",
        "coverage",
        "completion (s)",
    ])
    .with_title("Prefetcher comparison on the PowerGraph trace (50% memory, Leap data path)");
    for kind in PrefetcherKind::EVALUATED {
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .prefetcher(kind)
            .build()
            .expect("valid config");
        let result = VmmSimulator::new(config).run_prepopulated(&trace);
        prefetch_table.add_row(vec![
            kind.label().to_string(),
            result.cache_stats.cache_adds().to_string(),
            result.cache_stats.misses().to_string(),
            format!("{:.1}%", 100.0 * result.prefetch_stats.accuracy()),
            format!("{:.1}%", 100.0 * result.prefetch_stats.coverage()),
            format!("{:.3}", result.completion_seconds()),
        ]);
    }
    println!("{prefetch_table}");
}
