//! Replay a recorded fault log (perf-script page faults or DAMON region
//! samples) through the simulator, then export the run back out and verify
//! the round trip.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example replay_fault_log [-- PATH]
//! ```
//!
//! Without a path it replays the committed fixture
//! `tests/fixtures/perf_faults.log`. The format is auto-detected; see
//! ARCHITECTURE.md "Trace ingestion" for both grammars.

use leap_repro::leap_metrics::TextTable;
use leap_repro::leap_workloads::ingest::{ingest_path, ingest_str, LogFormat};
use leap_repro::prelude::*;
use std::path::PathBuf;

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/perf_faults.log")
        });

    let ingested = match ingest_path(&path) {
        Ok(ingested) => ingested,
        Err(e) => {
            eprintln!("cannot ingest {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    println!(
        "{}: {} format, {} process(es), {} accesses from {} event line(s)",
        path.display(),
        ingested.format().label(),
        ingested.processes(),
        ingested.total_accesses(),
        ingested.event_lines(),
    );
    for (pid, trace) in ingested.pids().iter().zip(ingested.traces()) {
        println!(
            "  pid {pid} ({}): {} accesses over {} distinct pages, {:.3} ms think time",
            trace.name(),
            trace.len(),
            trace.working_set_pages(),
            trace.total_compute().as_millis_f64(),
        );
    }

    // Replay the demuxed processes through both canonical configurations,
    // time-shared over two cores at 50 % local memory.
    let traces = ingested.traces().to_vec();
    let build = |config: SimConfig| {
        VmmSimulator::new(
            config
                .to_builder()
                .memory_fraction(0.5)
                .cores(2)
                .seed(7)
                .build()
                .expect("valid replay config"),
        )
    };

    let mut table = TextTable::new(vec![
        "configuration",
        "median remote (us)",
        "p99 remote (us)",
        "cache hit",
        "completion (ms)",
    ]);
    let mut leap_result = None;
    for (label, config) in [
        ("D-VMM (linux)", SimConfig::linux_defaults()),
        ("D-VMM + Leap", SimConfig::leap_defaults()),
    ] {
        let mut result = build(config).run_multi(&traces);
        table.add_row(vec![
            label.to_string(),
            format!("{:.2}", result.median_remote_latency().as_micros_f64()),
            format!("{:.2}", result.p99_remote_latency().as_micros_f64()),
            format!("{:.1}%", 100.0 * result.cache_hit_ratio()),
            format!("{:.3}", result.completion_time.as_millis_f64()),
        ]);
        if label.contains("Leap") {
            leap_result = Some(result);
        }
    }
    println!("\n{}", table.render());
    let _ = leap_result;

    // The inverse direction: record the Leap replay and re-ingest it. The
    // recorded log is the canonical perf format, so ingesting it gives the
    // replayed traces back bit-identically.
    let mut recorder = TraceRecorder::for_traces(&traces);
    build(SimConfig::leap_defaults())
        .session()
        .observe(&mut recorder)
        .run_multi(&traces);
    let exported = recorder.to_log();
    let reingested = ingest_str(&exported, LogFormat::PerfScript).expect("recorded log ingests");
    assert_eq!(
        reingested.traces(),
        &traces[..],
        "round trip must reproduce the replayed traces"
    );
    println!(
        "round trip OK: recorded {} events, re-ingested {} traces bit-identically",
        recorder.events(),
        reingested.processes(),
    );
}
