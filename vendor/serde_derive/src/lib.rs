//! Offline stand-in for `serde_derive`.
//!
//! The workspace only ever *marks* types with `#[derive(Serialize,
//! Deserialize)]`; it never routes them through a serde serializer (see
//! `vendor/README.md`). These derives therefore expand to nothing, keeping
//! the annotations — and the upgrade path to real serde — intact.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
