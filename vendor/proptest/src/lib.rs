//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the slice of the proptest API this workspace uses: range
//! strategies over the primitive integer/float types, `any::<T>()` for the
//! types the tests ask for, tuple strategies, `collection::vec`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros. Case generation
//! is deterministic (seeded per test from the macro call site), so failures
//! reproduce exactly; there is no shrinking.

use std::ops::Range;

/// Number of cases generated per property.
pub const CASES: u64 = 128;

/// Deterministic generator driving strategy sampling (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Modulo bias is irrelevant for a test-case generator.
        self.next_u64() % bound
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64() * 2e6 - 1e6
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Any, Arbitrary, Just, Strategy, TestRng};
}

/// Defines property tests.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item becomes a test
/// that runs `body` for [`CASES`] deterministically generated inputs. The
/// `#[test]` attribute is written by the caller (as with real proptest) and
/// passed through unchanged.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($($strat,)*);
                #[allow(unused_variables, unused_mut)]
                let mut __rng = $crate::TestRng::new(
                    0x5EED_0000_0000_0000u64
                        ^ ((line!() as u64) << 32)
                        ^ (column!() as u64),
                );
                for __case in 0..$crate::CASES {
                    #[allow(unused_variables)]
                    let ($($arg,)*) =
                        $crate::Strategy::generate(&__strategies, &mut __rng);
                    // Each case runs in a closure so `prop_assume!` can skip
                    // it with an early return.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::option::Option<()> = (move || {
                        $body
                        ::core::option::Option::Some(())
                    })();
                    let _ = __outcome;
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = collection::vec(0u64..100, 3..7).generate(&mut rng);
            assert!(v.len() >= 3 && v.len() < 7);
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..50, flip in any::<bool>()) {
            prop_assert!(x < 50);
            let _ = flip;
        }

        #[test]
        fn tuple_strategies_work(pair in (0u32..4, any::<u64>())) {
            prop_assert!(pair.0 < 4);
        }
    }
}
