//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Times each benchmark closure with `std::time::Instant` and prints one
//! `group/name ... ns/iter` line. No statistics, warm-up calibration, or
//! report files — just enough to keep `cargo bench` meaningful offline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks a closure that borrows an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier combining a function name and a parameter, e.g.
/// `BenchmarkId::new("steady_stride", hsize)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id from a name and a displayed parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Hands the routine under test to the timing loop.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` with a fresh un-timed `setup` product per iteration.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: sample_size,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters > 0 {
        bencher.total.as_nanos() / bencher.iters as u128
    } else {
        0
    };
    println!(
        "{label:<50} {per_iter:>12} ns/iter ({} iters)",
        bencher.iters
    );
}

/// Declares a group-runner function calling each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u32;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_with_setup_gets_fresh_inputs() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        let mut seen = Vec::new();
        let mut next = 0u64;
        group
            .sample_size(4)
            .bench_with_input(BenchmarkId::new("setup", 4), &10u64, |b, &base| {
                b.iter_with_setup(
                    || {
                        next += 1;
                        base + next
                    },
                    |v| seen.push(v),
                )
            });
        assert_eq!(seen, vec![11, 12, 13, 14]);
    }
}
