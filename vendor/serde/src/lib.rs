//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize};` plus `#[derive(Serialize, Deserialize)]` compile unchanged.

pub use serde_derive::{Deserialize, Serialize};
